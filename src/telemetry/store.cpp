#include "telemetry/store.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/agg_kernels.hpp"
#include "telemetry/wal.hpp"

namespace oda::telemetry {

namespace {

constexpr std::size_t kDefaultShards = 16;
constexpr std::size_t kMaxShards = 4096;
/// frame() fans out to the pool only when the column work is worth the
/// submit overhead.
constexpr std::size_t kParallelFrameColumns = 4;

/// Process-wide store metrics (aggregate over every TimeSeriesStore — the
/// per-instance total_inserted() accessor remains exact per store). The
/// memory gauge grows by an estimate of each new series' footprint; ring
/// storage is preallocated at full capacity, so the estimate is taken once
/// at series creation. Stores are pipeline-lifetime objects, so the gauge is
/// treated as monotone (no subtraction on store destruction).
struct StoreMetrics {
  obs::Counter& inserts;
  obs::Counter& queries;
  obs::Gauge& memory_bytes;
  obs::Histogram& batch_size;

  static StoreMetrics& get() {
    static StoreMetrics m{
        obs::MetricsRegistry::global().counter("oda_store_inserts_total",
                                               "Samples inserted into any store"),
        obs::MetricsRegistry::global().counter(
            "oda_store_queries_total",
            "Time-range queries served (including aggregated/frame reads)"),
        obs::MetricsRegistry::global().gauge(
            "oda_store_memory_bytes",
            "Approximate bytes retained across all stores"),
        obs::MetricsRegistry::global().histogram(
            "oda_store_batch_size", "Readings per insert_batch() call",
            obs::exponential_bounds(1.0, 2.0, 17)),
    };
    return m;
  }
};

/// Number of samples with time < t, over the ring's two ascending spans
/// (the logical lower bound the original single-buffer binary search found).
std::size_t lower_index(std::span<const Sample> a, std::span<const Sample> b,
                        TimePoint t) {
  const auto less = [](const Sample& s, TimePoint tp) { return s.time < tp; };
  if (!b.empty() && b.front().time < t) {
    return a.size() +
           static_cast<std::size_t>(
               std::lower_bound(b.begin(), b.end(), t, less) - b.begin());
  }
  return static_cast<std::size_t>(
      std::lower_bound(a.begin(), a.end(), t, less) - a.begin());
}

/// Restricts the two spans to the logical index range [lo, hi).
std::pair<std::span<const Sample>, std::span<const Sample>> cut_range(
    std::span<const Sample> a, std::span<const Sample> b, std::size_t lo,
    std::size_t hi) {
  const auto cut = [](std::span<const Sample> s, std::size_t l, std::size_t h) {
    l = std::min(l, s.size());
    h = std::min(h, s.size());
    return s.subspan(l, h - l);
  };
  const std::size_t blo = lo > a.size() ? lo - a.size() : 0;
  const std::size_t bhi = hi > a.size() ? hi - a.size() : 0;
  return {cut(a, lo, hi), cut(b, blo, bhi)};
}

}  // namespace

double AggAccumulator::result(Aggregation agg) const {
  if (count == 0) return std::nan("");
  switch (agg) {
    case Aggregation::kMean:
      return sum / static_cast<double>(count);
    case Aggregation::kMin:
      return min;
    case Aggregation::kMax:
      return max;
    case Aggregation::kSum:
      return sum;
    case Aggregation::kLast:
      return last;
    case Aggregation::kCount:
      return static_cast<double>(count);
    case Aggregation::kStdDev:
      // Sample stddev (n-1), 0 for a single sample — the original
      // two-pass semantics, computed by Welford's update in add().
      return count < 2 ? 0.0
                       : std::sqrt(m2 / static_cast<double>(count - 1));
  }
  return std::nan("");
}

double aggregate(const std::vector<double>& values, Aggregation agg) {
  AggAccumulator acc;
  for (double v : values) acc.add(v);
  return acc.result(agg);
}

void Frame::allocate(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  // Round the stride up to a whole cache line of doubles so adjacent
  // columns never share a line, then over-allocate one line of slack and
  // pick the base offset that lands column 0 on a 64-byte boundary
  // (vector<double> only guarantees 8-byte alignment).
  constexpr std::size_t kLine = 64 / sizeof(double);
  stride_ = (rows + kLine - 1) & ~(kLine - 1);
  values_.assign(stride_ * cols + kLine - 1, std::nan(""));
  const auto addr = reinterpret_cast<std::uintptr_t>(values_.data());
  const std::size_t misalign = (addr % 64) / sizeof(double);
  base_ = misalign == 0 ? 0 : kLine - misalign;
}

std::vector<double> Frame::column(const std::string& name) const {
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c] == name) {
      const auto stripe = column_values(c);
      return std::vector<double>(stripe.begin(), stripe.end());
    }
  }
  throw ContractError("frame column not found: " + name);
}

TimeSeriesStore::TimeSeriesStore(std::size_t capacity_per_sensor,
                                 std::size_t shards)
    : capacity_(capacity_per_sensor) {
  ODA_REQUIRE(capacity_per_sensor > 0, "store capacity must be positive");
  ODA_REQUIRE(shards <= kMaxShards, "store shard count out of range");
  std::size_t want = shards == 0 ? kDefaultShards : shards;
  std::size_t n = 1;
  while (n < want) n <<= 1;
  shards_.reserve(n);
  shard_series_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    const obs::LabelSet labels = {{"shard", std::to_string(i)}};
    shard_series_.push_back(&obs::MetricsRegistry::global().gauge(
        "oda_store_shard_series", "Series stored in this shard (occupancy)",
        labels));
  }
  shard_mask_ = n - 1;
}

TimeSeriesStore::Series& TimeSeriesStore::series_locked(Shard& shard,
                                                        SeriesId id) {
  auto it = shard.series.find(id.value);
  if (it == shard.series.end()) {
    it = shard.series.emplace(id.value, std::make_unique<Series>(capacity_))
             .first;
    // Ring storage is preallocated: capacity slots plus map-node overhead.
    StoreMetrics::get().memory_bytes.add(static_cast<double>(
        capacity_ * sizeof(Sample) +
        SeriesInterner::global().path(id).size() + 64));
    shard_series_[id.value & shard_mask_]->add(1.0);
  }
  return *it->second;
}

void TimeSeriesStore::insert(SeriesId id, Sample sample) {
  ODA_REQUIRE(id.valid(), "store insert with invalid series id");
  if (wal_ != nullptr) {
    // Write-ahead: log before applying, outside any shard lock. A refused
    // append (degraded WAL) is accounted by the WAL; ingest continues.
    const IdReading logged{id, sample};
    wal_->append(std::span<const IdReading>(&logged, 1));
  }
  {
    Shard& shard = shard_of(id);
    // Wait accounting rides the uniform contention machinery in sync.hpp
    // (oda_lock_wait_seconds{rank="store_shard"}).
    WriterLock lock(shard.mu);
    series_locked(shard, id).samples.push(sample);
  }
  // relaxed: monotonic statistics counter (see total_inserted()).
  total_inserted_.fetch_add(1, std::memory_order_relaxed);
  StoreMetrics::get().inserts.inc();
}

void TimeSeriesStore::insert(const std::string& path, Sample sample) {
  insert(SeriesInterner::global().intern(path), sample);
}

void TimeSeriesStore::insert(const Reading& reading) {
  insert(reading.path, reading.sample);
}

void TimeSeriesStore::insert_batch(std::span<const IdReading> readings) {
  ODA_TRACE_SPAN_CAT("store.insert_batch", "store");
  StoreMetrics& metrics = StoreMetrics::get();
  metrics.batch_size.observe(static_cast<double>(readings.size()));
  if (readings.empty()) return;
  if (wal_ != nullptr) {
    // Write-ahead: one queue handoff per batch, before any shard lock.
    wal_->append(readings);
  }
  const std::size_t nshards = shards_.size();

  // Stable counting sort of reading indices by shard: each shard lock is
  // taken once per batch and per-series insertion order is preserved. The
  // scratch buffers are thread_local so steady-state ingest does no heap
  // allocation per batch.
  thread_local std::vector<std::uint32_t> counts;
  thread_local std::vector<std::uint32_t> order;
  thread_local std::vector<std::uint32_t> next;
  counts.assign(nshards + 1, 0);
  for (const IdReading& r : readings) {
    ODA_REQUIRE(r.id.valid(), "insert_batch with invalid series id");
    ++counts[(r.id.value & shard_mask_) + 1];
  }
  for (std::size_t s = 1; s <= nshards; ++s) counts[s] += counts[s - 1];
  order.resize(readings.size());
  next.assign(counts.begin(), counts.end() - 1);
  for (std::uint32_t i = 0; i < readings.size(); ++i) {
    order[next[readings[i].id.value & shard_mask_]++] = i;
  }

  for (std::size_t s = 0; s < nshards; ++s) {
    const std::uint32_t lo = counts[s];
    const std::uint32_t hi = counts[s + 1];
    if (lo == hi) continue;
    Shard& shard = *shards_[s];
    // Wait accounting rides the uniform contention machinery in sync.hpp
    // (try_lock fast path, timed slow path feeding the kStoreShard rank of
    // oda_lock_wait_seconds).
    WriterLock lock(shard.mu);
    for (std::uint32_t k = lo; k < hi; ++k) {
      const IdReading& r = readings[order[k]];
      series_locked(shard, r.id).samples.push(r.sample);
    }
  }
  // relaxed: monotonic statistics counter (see total_inserted()).
  total_inserted_.fetch_add(readings.size(), std::memory_order_relaxed);
  metrics.inserts.inc(readings.size());
}

void TimeSeriesStore::insert_batch(std::span<const Reading> readings) {
  SeriesInterner& interner = SeriesInterner::global();
  std::vector<IdReading> resolved(readings.size());
  for (std::size_t i = 0; i < readings.size(); ++i) {
    resolved[i] = {interner.intern(readings[i].path), readings[i].sample};
  }
  insert_batch(std::span<const IdReading>(resolved));
}

bool TimeSeriesStore::contains(SeriesId id) const {
  if (!id.valid()) return false;
  Shard& shard = shard_of(id);
  ReaderLock lock(shard.mu);
  return shard.series.count(id.value) != 0;
}

bool TimeSeriesStore::contains(const std::string& path) const {
  const auto id = SeriesInterner::global().lookup(path);
  return id.has_value() && contains(*id);
}

std::vector<std::string> TimeSeriesStore::paths() const {
  SeriesInterner& interner = SeriesInterner::global();
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    ReaderLock lock(shard->mu);
    for (const auto& [id, s] : shard->series) {
      out.push_back(interner.path(SeriesId{id}));
    }
  }
  // Sorted output preserves the original string-keyed map's iteration order.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> TimeSeriesStore::match(const std::string& pattern) const {
  std::vector<std::string> out = paths();
  out.erase(std::remove_if(
                out.begin(), out.end(),
                [&](const std::string& p) { return !glob_match(pattern, p); }),
            out.end());
  return out;
}

std::size_t TimeSeriesStore::sample_count(SeriesId id) const {
  if (!id.valid()) return 0;
  Shard& shard = shard_of(id);
  ReaderLock lock(shard.mu);
  const auto it = shard.series.find(id.value);
  return it == shard.series.end() ? 0 : it->second->samples.size();
}

std::size_t TimeSeriesStore::sample_count(const std::string& path) const {
  const auto id = SeriesInterner::global().lookup(path);
  return id ? sample_count(*id) : 0;
}

std::optional<Sample> TimeSeriesStore::latest(SeriesId id) const {
  if (!id.valid()) return std::nullopt;
  Shard& shard = shard_of(id);
  ReaderLock lock(shard.mu);
  const auto it = shard.series.find(id.value);
  if (it == shard.series.end() || it->second->samples.empty()) {
    return std::nullopt;
  }
  return it->second->samples.back();
}

std::optional<Sample> TimeSeriesStore::latest(const std::string& path) const {
  const auto id = SeriesInterner::global().lookup(path);
  return id ? latest(*id) : std::nullopt;
}

SeriesSlice TimeSeriesStore::query(SeriesId id, TimePoint from,
                                   TimePoint to) const {
  StoreMetrics::get().queries.inc();
  SeriesSlice out;
  if (!id.valid()) return out;
  Shard& shard = shard_of(id);
  ReaderLock lock(shard.mu);
  const auto it = shard.series.find(id.value);
  if (it == shard.series.end()) return out;
  // Samples are time-ordered (monotone inserts); binary-search the range
  // over the ring's two contiguous spans and bulk-copy it.
  const auto [a, b] = it->second->samples.spans();
  const std::size_t lo = lower_index(a, b, from);
  const std::size_t hi = lower_index(a, b, to);
  if (lo >= hi) return out;
  const auto [ra, rb] = cut_range(a, b, lo, hi);
  out.times.resize(hi - lo);
  out.values.resize(hi - lo);
  std::size_t w = 0;
  for (const Sample& s : ra) {
    out.times[w] = s.time;
    out.values[w] = s.value;
    ++w;
  }
  for (const Sample& s : rb) {
    out.times[w] = s.time;
    out.values[w] = s.value;
    ++w;
  }
  return out;
}

SeriesSlice TimeSeriesStore::query(const std::string& path, TimePoint from,
                                   TimePoint to) const {
  const auto id = SeriesInterner::global().lookup(path);
  return query(id.value_or(SeriesId{}), from, to);
}

SeriesSlice TimeSeriesStore::query_all(const std::string& path) const {
  return query(path, kTimeMin, kTimeMax);
}

SeriesSlice TimeSeriesStore::query_aggregated(SeriesId id, TimePoint from,
                                              TimePoint to, Duration bucket,
                                              Aggregation agg) const {
  ODA_REQUIRE(bucket > 0, "aggregation bucket must be positive");
  StoreMetrics::get().queries.inc();
  SeriesSlice out;
  if (!id.valid()) return out;
  Shard& shard = shard_of(id);
  ReaderLock lock(shard.mu);
  const auto it = shard.series.find(id.value);
  if (it == shard.series.end()) return out;
  const auto [a, b] = it->second->samples.spans();
  const std::size_t lo = lower_index(a, b, from);
  const std::size_t hi = lower_index(a, b, to);
  if (lo >= hi) return out;
  const auto [ra, rb] = cut_range(a, b, lo, hi);
  // Single streaming pass through the per-Aggregation bucket kernels
  // (agg_kernels.hpp): one boundary compare per sample, a tight reduce loop
  // per bucket, bit-identical to folding through AggAccumulator.
  bucket_aggregate_sparse(ra, rb, from, bucket, agg, out.times, out.values);
  return out;
}

SeriesSlice TimeSeriesStore::query_aggregated(const std::string& path,
                                              TimePoint from, TimePoint to,
                                              Duration bucket,
                                              Aggregation agg) const {
  const auto id = SeriesInterner::global().lookup(path);
  return query_aggregated(id.value_or(SeriesId{}), from, to, bucket, agg);
}

void TimeSeriesStore::fill_column(Frame& f, std::size_t col, SeriesId id,
                                  TimePoint from, TimePoint to, Duration bucket,
                                  Aggregation agg) const {
  // Per-column span: under a parallel frame() these run on pool workers and
  // carry the submitter's trace context, so the critical-path analyzer sees
  // the fan-out width (frame_parallelism) directly from the trace.
  ODA_TRACE_SPAN_CAT("store.fill_column", "store");
  StoreMetrics::get().queries.inc();
  // Unknown sensors (no interner entry, or interned but never inserted
  // here) leave the column all-NaN — never an aliased series' data.
  if (!id.valid()) return;
  Shard& shard = shard_of(id);
  ReaderLock lock(shard.mu);
  const auto it = shard.series.find(id.value);
  if (it == shard.series.end()) return;
  const auto [a, b] = it->second->samples.spans();
  const std::size_t lo = lower_index(a, b, from);
  const std::size_t hi = lower_index(a, b, to);
  if (lo >= hi) return;
  const auto [ra, rb] = cut_range(a, b, lo, hi);
  // The dense kernel writes aggregates straight into this column's
  // contiguous stripe — no intermediate SeriesSlice, no scatter pass.
  bucket_aggregate_dense(ra, rb, from, bucket, agg, f.rows(),
                         f.column_values(col).data());
}

Frame TimeSeriesStore::frame(const std::vector<std::string>& sensor_paths,
                             TimePoint from, TimePoint to, Duration bucket,
                             Aggregation agg) const {
  ODA_TRACE_SPAN_CAT("store.frame", "store");
  ODA_REQUIRE(bucket > 0, "frame bucket must be positive");
  Frame f;
  f.columns = sensor_paths;
  const std::size_t n_buckets = static_cast<std::size_t>(
      std::max<TimePoint>(0, (to - from + bucket - 1) / bucket));
  f.times.resize(n_buckets);
  for (std::size_t bkt = 0; bkt < n_buckets; ++bkt) {
    f.times[bkt] = from + static_cast<Duration>(bkt) * bucket;
  }
  f.allocate(n_buckets, sensor_paths.size());

  SeriesInterner& interner = SeriesInterner::global();
  std::vector<SeriesId> ids(sensor_paths.size());
  for (std::size_t c = 0; c < sensor_paths.size(); ++c) {
    // Unknown paths map to the (explicitly invalid) default SeriesId;
    // fill_column leaves those columns all-NaN.
    ids[c] = interner.lookup(sensor_paths[c]).value_or(SeriesId{});
  }
  // Columns are independent and each writes only its own cache-line-aligned
  // stripe, so fan them out when a pool is wired in. parallel_for claims
  // chunks of columns via a shared atomic cursor (grain auto-tuned), so a
  // wide frame costs thread_count task submissions, not one per column.
  if (pool_ != nullptr && sensor_paths.size() >= kParallelFrameColumns) {
    pool_->parallel_for(0, sensor_paths.size(), [&](std::size_t c) {
      fill_column(f, c, ids[c], from, to, bucket, agg);
    });
  } else {
    for (std::size_t c = 0; c < sensor_paths.size(); ++c) {
      fill_column(f, c, ids[c], from, to, bucket, agg);
    }
  }
  return f;
}

}  // namespace oda::telemetry
