// Durable write-ahead log under the sharded TimeSeriesStore.
//
// The in-memory store dies with the process (ROADMAP item 2); production ODA
// stacks persist ingest through a durable tier because collector and store
// restarts are routine at facility scale. The Wal gives the write path that
// tier without touching the hot insert path's locking:
//
//  * a compact binary record format — WAL-local series-id interning table,
//    delta-encoded timestamps (zigzag LEB128), raw little-endian doubles for
//    bit-exact replay, a CRC32C over every record, framed segments with
//    size-based rotation (walfmt below documents the exact layout);
//  * a group-commit writer thread fed from insert/insert_batch through a
//    bounded queue: producers block when the queue is full (backpressure,
//    never sample loss), the writer drains everything pending into one
//    write+fsync per commit;
//  * a recovery path that scans segments in sequence order, truncates at the
//    first invalid record, and replays the surviving prefix — per-series
//    insertion order is preserved, so a store rebuilt from the WAL is
//    bit-identical to the pre-crash in-memory state (tests/test_wal.cpp
//    checks this against the test_store_equiv reference model);
//  * graceful degradation: ENOSPC or an fsync failure flips the Wal into
//    in-memory-only mode (oda_wal_degraded gauge, one error log, exact
//    lost-sample accounting mirroring PR 4's gap accounting) instead of
//    blocking ingest.
//
// All file I/O flows through the WalFs seam; FaultFs wraps any WalFs and
// injects torn tail writes, flipped bytes, short reads, ENOSPC, and fsync
// failures deterministically from tests. docs/STORE.md ("Durability & crash
// recovery") and docs/RESILIENCE.md describe the format and the recovery
// truncation rules; docs/OBSERVABILITY.md lists the oda_wal_* families.
//
// Ordering caveat: replay reproduces the order batches entered the queue.
// With a single ingest thread (the collector) that equals insert order and
// replay is an exact prefix of the insert stream; concurrent appenders are
// safe (per-series order within each appender is preserved) but the
// interleaving between appenders is whatever the queue saw.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/sync.hpp"
#include "telemetry/series_id.hpp"

namespace oda::telemetry {

class TimeSeriesStore;

/// True when the durable tier is compiled in (ODA_WAL=ON). With the option
/// off, Wal::start() returns false and every append is a cheap no-op, so
/// callers gate setup (and tests skip) on this one predicate.
bool wal_enabled() noexcept;

/// CRC32C (Castagnoli), software table-driven — the per-record checksum.
/// Exposed so tests can forge/verify records without a private header.
std::uint32_t crc32c(const void* data, std::size_t n,
                     std::uint32_t seed = 0) noexcept;

// ------------------------------------------------------------------ format
//
// A segment file (`wal-<seq 8 hex>.log`) is an 8-byte magic header followed
// by length-prefixed records:
//
//   segment  := "ODAWAL01" record*
//   record   := u32 payload_len | u8 type | u8 pad[3] | u32 crc | payload
//   crc      := crc32c(header bytes [0, 8) ++ payload)   (crc field zeroed)
//   intern   := type 1, payload = u32 wal_id | u32 path_len | path bytes
//   batch    := type 2, payload = u32 count, then per reading:
//                 LEB128 varint wal_id
//                 zigzag LEB128 varint timestamp delta (vs previous reading
//                   in the same record; first delta is vs 0)
//                 8 raw little-endian bytes of the IEEE double
//
// All fixed-width integers are little-endian. wal_ids are a WAL-local dense
// id space (0, 1, ...) written through intern records the first time a
// series appears — process SeriesIds are NOT stable across restarts, so
// they never appear on disk. Timestamp deltas are computed in wrapping
// uint64 arithmetic, so the full int64 TimePoint range round-trips.
namespace walfmt {
inline constexpr char kMagic[8] = {'O', 'D', 'A', 'W', 'A', 'L', '0', '1'};
inline constexpr std::size_t kMagicBytes = sizeof(kMagic);
inline constexpr std::size_t kRecordHeaderBytes = 12;
inline constexpr std::uint8_t kRecordIntern = 1;
inline constexpr std::uint8_t kRecordBatch = 2;
/// Upper bound on a record payload accepted by recovery: anything larger is
/// treated as a corrupt header (the writer never produces records this big).
inline constexpr std::uint32_t kMaxRecordPayload = 16u << 20;
}  // namespace walfmt

// -------------------------------------------------------------------- WalFs

/// File-I/O seam for the WAL: everything the writer and recovery touch on
/// disk goes through this interface, so tests can substitute FaultFs.
/// Implementations must be safe for concurrent calls on distinct paths and
/// for the Wal's usage pattern (writer thread appends, recovery reads before
/// the writer starts).
class WalFs {
 public:
  virtual ~WalFs() = default;

  struct AppendResult {
    std::size_t written = 0;  ///< bytes actually appended
    int err = 0;              ///< errno when written < n (0 on success)
    bool synced = true;       ///< false when sync was requested but failed
  };

  /// Creates `dir` (and parents). False on failure.
  virtual bool mkdirs(const std::string& dir) = 0;
  /// Plain filenames in `dir`, unsorted; empty on error or empty dir.
  virtual std::vector<std::string> list(const std::string& dir) = 0;
  /// Size in bytes, or -1 when the file does not exist.
  virtual std::int64_t file_size(const std::string& path) = 0;
  /// Reads the whole file into `out`. False on open/IO error. A short read
  /// (fewer bytes than file_size) is reported as success with a short
  /// `out` — recovery treats the missing tail as torn.
  virtual bool read_file(const std::string& path, std::string& out) = 0;
  /// Appends `n` bytes (creating the file), then fsyncs when `sync`.
  virtual AppendResult append(const std::string& path, const void* data,
                              std::size_t n, bool sync) = 0;
  /// Truncates to `size` bytes. False on failure.
  virtual bool truncate_file(const std::string& path, std::uint64_t size) = 0;
  /// Removes the file. False on failure.
  virtual bool remove_file(const std::string& path) = 0;
};

/// POSIX implementation (open/write/fsync/close per append batch — one
/// round per group commit, not per sample).
class PosixWalFs final : public WalFs {
 public:
  bool mkdirs(const std::string& dir) override;
  std::vector<std::string> list(const std::string& dir) override;
  std::int64_t file_size(const std::string& path) override;
  bool read_file(const std::string& path, std::string& out) override;
  AppendResult append(const std::string& path, const void* data, std::size_t n,
                      bool sync) override;
  bool truncate_file(const std::string& path, std::uint64_t size) override;
  bool remove_file(const std::string& path) override;
};

/// Deterministic storage-fault injector wrapping any WalFs. Each knob is
/// armed from the test thread and consumed by the next matching operation;
/// counters report what actually fired. Thread-safe (one leaf mutex).
class FaultFs final : public WalFs {
 public:
  explicit FaultFs(WalFs& base) : base_(base) {}

  /// Next append writes only the first `bytes` of its buffer, then fails
  /// with EIO — a torn tail the caller believes failed.
  void fail_next_append_after(std::size_t bytes);
  /// XORs `mask` into byte `offset` of the next append's buffer (the write
  /// itself succeeds — silent media corruption).
  void corrupt_next_append(std::size_t offset, std::uint8_t mask);
  /// Byte budget across all future appends; once spent, appends write the
  /// remaining budget and fail with ENOSPC. Negative disables.
  void set_space_budget(std::int64_t bytes);
  /// The next `count` syncs fail (append reports synced=false).
  void fail_fsync(int count);
  /// read_file returns at most `bytes` of every file. Negative disables.
  void set_short_read(std::int64_t bytes);
  /// The next `count` truncate_file calls fail.
  void fail_truncate(int count);

  std::uint64_t appends_failed() const;
  std::uint64_t fsyncs_failed() const;

  bool mkdirs(const std::string& dir) override;
  std::vector<std::string> list(const std::string& dir) override;
  std::int64_t file_size(const std::string& path) override;
  bool read_file(const std::string& path, std::string& out) override;
  AppendResult append(const std::string& path, const void* data, std::size_t n,
                      bool sync) override;
  bool truncate_file(const std::string& path, std::uint64_t size) override;
  bool remove_file(const std::string& path) override;

 private:
  WalFs& base_;
  /// Leaf lock guarding the knobs; never held across base_ calls that could
  /// themselves take locks (PosixWalFs takes none).
  mutable Mutex mu_;
  std::int64_t torn_after_ ODA_GUARDED_BY(mu_) = -1;
  std::int64_t corrupt_offset_ ODA_GUARDED_BY(mu_) = -1;
  std::uint8_t corrupt_mask_ ODA_GUARDED_BY(mu_) = 0;
  std::int64_t space_budget_ ODA_GUARDED_BY(mu_) = -1;
  int fsync_failures_ ODA_GUARDED_BY(mu_) = 0;
  std::int64_t short_read_ ODA_GUARDED_BY(mu_) = -1;
  int truncate_failures_ ODA_GUARDED_BY(mu_) = 0;
  std::uint64_t appends_failed_ ODA_GUARDED_BY(mu_) = 0;
  std::uint64_t fsyncs_failed_ ODA_GUARDED_BY(mu_) = 0;
};

// ---------------------------------------------------------------------- Wal

struct WalOptions {
  std::string dir;                            ///< segment directory
  std::size_t segment_max_bytes = 4u << 20;   ///< rotate past this size
  std::size_t queue_capacity = 64;            ///< pending batches before
                                              ///< producers block
  bool fsync_each_commit = true;              ///< fsync every group commit
                                              ///< (off: only on flush())

  /// Reads wal.dir / wal.segment_max_bytes / wal.queue_capacity / wal.fsync
  /// from a Config, falling back to the defaults above.
  static WalOptions from_config(const Config& cfg);
};

/// What recovery found (and gave up on). `truncated_bytes` counts every
/// byte discarded at and after the first invalid record, including whole
/// later segments — the exact-accounting mirror of the collector's gap
/// bookkeeping: recovered + truncated == bytes ever written.
struct WalRecoveryStats {
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t samples_replayed = 0;
  std::uint64_t truncated_bytes = 0;
  std::uint64_t truncated_segments = 0;  ///< whole segments discarded
  bool tail_truncated = false;
  std::string truncate_reason;  ///< "", "bad_magic", "short_record",
                                ///< "crc_mismatch", "bad_header",
                                ///< "unknown_series", "decode_error",
                                ///< "io_error"
};

/// The write-ahead log. Lifecycle:
///
///   Wal wal(opts);                       // or Wal(opts, &fault_fs)
///   wal.recover_into(store);             // replay BEFORE attaching
///   store.set_wal(&wal);
///   wal.start();                         // spawn the group-commit writer
///   ... ingest; wal.flush() to ack durability ...
///   store.set_wal(nullptr); wal.stop();  // orderly shutdown: drains+fsyncs
///
/// Attach to the store only after recovery: recover_into() inserts through
/// the normal store API, and a store with the Wal already attached would
/// re-log its own replay.
class Wal {
 public:
  /// `fs` must outlive the Wal; nullptr selects a process-wide PosixWalFs.
  explicit Wal(WalOptions opts, WalFs* fs = nullptr);
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Scans every segment in sequence order, appends the decoded readings to
  /// `out` in their original append order, truncates the on-disk tail at
  /// the first invalid record, and primes the writer's interning state so a
  /// subsequent start() continues the same WAL. Call once, before start().
  WalRecoveryStats recover(std::vector<IdReading>& out);
  /// recover() + insert_batch into `store` (which must not have this Wal
  /// attached yet).
  WalRecoveryStats recover_into(TimeSeriesStore& store);

  /// Spawns the writer thread. Returns false (and the Wal stays inert or
  /// degraded) when the durable tier is compiled out or the directory
  /// cannot be created. Implies recover() into the void if the caller
  /// skipped it, so intern continuity always holds.
  bool start();
  /// Drains the queue, commits, fsyncs, and joins the writer. Idempotent.
  void stop();

  /// Copies `readings` into the commit queue. Blocks while the queue is at
  /// capacity (bounded-memory backpressure). Returns false — counting every
  /// sample lost — when degraded, stopped, or compiled out.
  bool append(std::span<const IdReading> readings);
  /// Blocks until everything append()ed before this call is written and
  /// fsynced. False when that cannot be guaranteed (degraded/stopped).
  bool flush();

  /// True once a storage fault flipped the Wal to in-memory-only mode.
  bool degraded() const noexcept {
    // relaxed: advisory flag; producers seeing it late just enqueue one
    // more batch that the writer counts as lost.
    return degraded_.load(std::memory_order_relaxed);
  }

  // Conservation counters: accepted counts every sample offered to
  // append() (queued or refused); accepted == committed + lost once stop()
  // or a successful flush() returns (in-flight samples are transient).
  std::uint64_t accepted_samples() const noexcept {
    return accepted_samples_.load(std::memory_order_relaxed);
  }
  std::uint64_t committed_samples() const noexcept {
    return committed_samples_.load(std::memory_order_relaxed);
  }
  std::uint64_t lost_samples() const noexcept {
    return lost_samples_.load(std::memory_order_relaxed);
  }

  const WalRecoveryStats& recovery_stats() const noexcept {
    return recovery_stats_;
  }
  const WalOptions& options() const noexcept { return opts_; }

 private:
  struct PendingBatch {
    std::uint64_t seq = 0;
    bool sync = false;  ///< flush marker: force fsync on the commit
    std::vector<IdReading> readings;
  };

  std::string segment_path(std::uint64_t seq) const;
  void writer_loop();
  /// Encodes + writes one drained group; returns false on storage failure
  /// (caller enters degraded mode). Writer thread only.
  bool commit_group(std::vector<PendingBatch>& group);
  void enter_degraded(const char* what, int err);

  WalOptions opts_;
  WalFs* fs_;  // never null after construction

  // Writer-thread-only encode state (no lock: touched by recover() before
  // the thread exists, then exclusively by writer_loop()).
  std::vector<std::uint32_t> wal_id_of_;  // SeriesId.value -> wal_id + 1
  std::uint32_t next_wal_id_ = 0;
  std::uint64_t segment_seq_ = 0;
  std::uint64_t segment_bytes_ = 0;
  TimePoint last_time_ = 0;  // delta base continues across records
  std::string encode_buf_;

  /// WAL queue/commit lock: ranked between the store shards and the
  /// interner. Nothing in the store holds a shard lock while appending, but
  /// the rank pins the tier for contention attribution and keeps the edge
  /// to the interner (replay interns while the Wal is quiescent) explicit.
  Mutex mu_ ODA_ACQUIRED_AFTER(lock_order::wal)
      ODA_ACQUIRED_BEFORE(lock_order::interner){LockRankId::kWal};
  CondVar not_empty_;
  CondVar not_full_;
  CondVar committed_cv_;
  std::deque<PendingBatch> pending_ ODA_GUARDED_BY(mu_);
  std::uint64_t appended_seq_ ODA_GUARDED_BY(mu_) = 0;
  std::uint64_t committed_seq_ ODA_GUARDED_BY(mu_) = 0;
  bool stopping_ ODA_GUARDED_BY(mu_) = false;
  bool started_ ODA_GUARDED_BY(mu_) = false;

  std::atomic<bool> degraded_{false};
  std::atomic<std::uint64_t> accepted_samples_{0};
  std::atomic<std::uint64_t> committed_samples_{0};
  std::atomic<std::uint64_t> lost_samples_{0};

  bool recovered_ = false;  // recover() ran (main thread, pre-start)
  WalRecoveryStats recovery_stats_;
  std::thread writer_;
};

}  // namespace oda::telemetry
