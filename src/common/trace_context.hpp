// Trace-context propagation primitives shared by every layer: a 64-bit
// (trace id, span id) pair carried in a thread-local slot. The slot is
// written by obs::TraceSpan on scope entry and read at async boundaries —
// ThreadPool::submit captures the submitter's context and restores it in
// the worker so child spans keep their causal parent across threads. This
// lives in common/ (not obs/) because ThreadPool sits below obs in the
// dependency stack.
#pragma once

#include <cstdint>

namespace oda {

/// The identity of the currently-executing span. trace_id groups every
/// span of one causal chain (e.g. a full collect pass); span_id names the
/// innermost open span. {0, 0} means "no active trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool active() const noexcept { return trace_id != 0; }
};

/// Returns the calling thread's active context ({} when none).
TraceContext current_trace_context() noexcept;

/// Installs ctx as the calling thread's context and returns the previous
/// one. Callers are expected to restore the previous value (see
/// TraceContextScope) — contexts nest, they do not leak.
TraceContext exchange_trace_context(TraceContext ctx) noexcept;

/// Mints a process-unique nonzero 64-bit id (mixed so ids are spread over
/// the full word even though the source is a counter). Used for both trace
/// and span ids.
std::uint64_t next_trace_id() noexcept;

/// RAII: installs a context for the current scope and restores the previous
/// one on exit. Async boundaries use it to adopt a captured context inside
/// the borrowed thread.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx) noexcept
      : prev_(exchange_trace_context(ctx)) {}
  ~TraceContextScope() { exchange_trace_context(prev_); }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace oda
