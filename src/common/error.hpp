// Error handling primitives.
//
// Library code reports recoverable failures through Result<T> (a lightweight
// expected-like type; std::expected is C++23) and reserves exceptions for
// programming errors surfaced via ODA_REQUIRE.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace oda {

/// Exception thrown on contract violations (programming errors).
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Exception thrown when a configuration value is missing or malformed.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

#define ODA_REQUIRE(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::oda::ContractError(std::string("requirement failed: ") +     \
                                 (msg) + " [" #cond "]");                  \
    }                                                                      \
  } while (false)

/// Minimal expected-like result carrying either a value or an error message.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  static Result failure(std::string message) {
    return Result(Error{std::move(message)});
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    if (!ok()) throw ContractError("Result::value on failure: " + error());
    return std::get<T>(data_);
  }
  T&& value() && {
    if (!ok()) throw ContractError("Result::value on failure: " + error());
    return std::get<T>(std::move(data_));
  }
  const std::string& error() const {
    static const std::string kNone = "(no error)";
    return ok() ? kNone : std::get<Error>(data_).message;
  }

  /// Returns the value or a fallback.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  struct Error {
    std::string message;
  };
  explicit Result(Error e) : data_(std::move(e)) {}
  std::variant<T, Error> data_;
};

}  // namespace oda
