// Leveled logging with pluggable sink. Library code logs sparingly (warnings
// on degraded behaviour); examples and benches raise the level for narration.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace oda {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* log_level_name(LogLevel level);

/// Process-wide logger configuration (thread-safe).
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level);
  static LogLevel level();
  /// Replaces the sink (default writes to stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);
  static void write(LogLevel level, const std::string& message);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define ODA_LOG(severity)                       \
  if (::oda::Log::level() <= (severity))        \
  ::oda::detail::LogLine(severity)

#define ODA_LOG_DEBUG ODA_LOG(::oda::LogLevel::kDebug)
#define ODA_LOG_INFO ODA_LOG(::oda::LogLevel::kInfo)
#define ODA_LOG_WARN ODA_LOG(::oda::LogLevel::kWarn)
#define ODA_LOG_ERROR ODA_LOG(::oda::LogLevel::kError)

}  // namespace oda
