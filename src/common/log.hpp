// Leveled logging with pluggable sink. Library code logs sparingly (warnings
// on degraded behaviour); examples and benches raise the level for narration.
// The default stderr sink prefixes every line with a wall-clock timestamp,
// the level, and a small per-thread id:
//   [2026-08-07T14:03:11] [WARN] [t1] collector group matched no sensors
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/sync.hpp"

namespace oda {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* log_level_name(LogLevel level);

/// Process-wide logger configuration (thread-safe).
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level);
  static LogLevel level();
  /// Replaces the sink (default writes to stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);
  static void write(LogLevel level, const std::string& message);

  /// Small dense id for the calling thread (1, 2, ... in first-log order),
  /// used by the default sink's [tN] field.
  static std::size_t thread_id();
};

/// Test helper: captures log lines into a bounded ring of recent entries so
/// tests assert on warnings instead of scraping stderr. Installs itself as
/// the sink on construction and restores the default stderr sink on
/// destruction (keep at most one alive at a time).
class CaptureSink {
 public:
  explicit CaptureSink(std::size_t capacity = 256);
  CaptureSink(const CaptureSink&) = delete;
  CaptureSink& operator=(const CaptureSink&) = delete;
  ~CaptureSink();

  /// Captured messages oldest-first, formatted "[LEVEL] message".
  std::vector<std::string> lines() const;
  /// True if any captured message contains `substring`.
  bool contains(const std::string& substring) const;
  /// Captured entries at exactly `level`.
  std::size_t count(LogLevel level) const;
  std::size_t size() const;
  void clear();

 private:
  struct Entry {
    LogLevel level = LogLevel::kDebug;
    std::string message;
  };

  /// Log-level leaf lock: taken inside Log::write's sink lock, never
  /// around any other lock.
  mutable Mutex mu_{LockRankId::kLog};
  RingBuffer<Entry> entries_ ODA_GUARDED_BY(mu_);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define ODA_LOG(severity)                       \
  if (::oda::Log::level() <= (severity))        \
  ::oda::detail::LogLine(severity)

#define ODA_LOG_DEBUG ODA_LOG(::oda::LogLevel::kDebug)
#define ODA_LOG_INFO ODA_LOG(::oda::LogLevel::kInfo)
#define ODA_LOG_WARN ODA_LOG(::oda::LogLevel::kWarn)
#define ODA_LOG_ERROR ODA_LOG(::oda::LogLevel::kError)

}  // namespace oda
