#include "common/csv.hpp"

#include <cmath>
#include <cstdlib>
#include <ostream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace oda {

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(format_double(v, precision, true));
  write_row(text);
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw ConfigError("CSV column not found: " + name);
}

std::vector<double> CsvTable::numeric_column(const std::string& name) const {
  const std::size_t idx = column(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    if (idx >= row.size()) {
      out.push_back(std::nan(""));
      continue;
    }
    char* end = nullptr;
    const double v = std::strtod(row[idx].c_str(), &end);
    out.push_back(end == row[idx].c_str() ? std::nan("") : v);
  }
  return out;
}

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  const auto end_cell = [&] {
    row.push_back(cell);
    cell.clear();
  };
  const auto end_row = [&] {
    end_cell();
    if (table.header.empty()) {
      table.header = row;
    } else {
      table.rows.push_back(row);
    }
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n':
        if (row_has_content || !cell.empty() || !row.empty()) end_row();
        break;
      default:
        cell += c;
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !cell.empty() || !row.empty()) end_row();
  return table;
}

}  // namespace oda
