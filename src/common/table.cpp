#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace oda {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)),
      aligns_(headers_.size(), Align::kLeft),
      max_widths_(headers_.size(), 0) {
  ODA_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

void TextTable::set_align(std::size_t column, Align align) {
  ODA_REQUIRE(column < aligns_.size(), "column out of range");
  aligns_[column] = align;
}

void TextTable::set_max_width(std::size_t column, std::size_t width) {
  ODA_REQUIRE(column < max_widths_.size(), "column out of range");
  max_widths_[column] = width;
}

void TextTable::set_title(std::string title) { title_ = std::move(title); }

std::vector<std::string> TextTable::wrap_cell(const std::string& text,
                                              std::size_t width) const {
  std::vector<std::string> lines;
  for (const auto& hard_line : split(text, '\n')) {
    if (width == 0 || hard_line.size() <= width) {
      lines.push_back(hard_line);
      continue;
    }
    std::string current;
    for (const auto& word : split(hard_line, ' ')) {
      if (current.empty()) {
        current = word;
      } else if (current.size() + 1 + word.size() <= width) {
        current += ' ';
        current += word;
      } else {
        lines.push_back(current);
        current = word;
      }
      // Break words longer than the column.
      while (current.size() > width) {
        lines.push_back(current.substr(0, width));
        current = current.substr(width);
      }
    }
    lines.push_back(current);
  }
  if (lines.empty()) lines.emplace_back();
  return lines;
}

std::string TextTable::render() const {
  const std::size_t ncols = headers_.size();

  // Pre-wrap every cell and compute column widths.
  std::vector<std::vector<std::vector<std::string>>> wrapped;  // row, col, line
  wrapped.reserve(rows_.size());
  std::vector<std::size_t> widths(ncols, 0);
  for (std::size_t c = 0; c < ncols; ++c) {
    widths[c] = headers_[c].size();
    if (max_widths_[c] != 0) widths[c] = std::min(widths[c], max_widths_[c]);
  }
  for (const auto& row : rows_) {
    std::vector<std::vector<std::string>> wrow(ncols);
    if (!row.separator) {
      for (std::size_t c = 0; c < ncols; ++c) {
        wrow[c] = wrap_cell(row.cells[c], max_widths_[c]);
        for (const auto& line : wrow[c]) {
          widths[c] = std::max(widths[c], line.size());
        }
      }
    }
    wrapped.push_back(std::move(wrow));
  }

  const auto pad = [&](const std::string& s, std::size_t width, Align a) {
    if (s.size() >= width) return s;
    const std::size_t space = width - s.size();
    switch (a) {
      case Align::kLeft:
        return s + std::string(space, ' ');
      case Align::kRight:
        return std::string(space, ' ') + s;
      case Align::kCenter:
        return std::string(space / 2, ' ') + s + std::string(space - space / 2, ' ');
    }
    return s;
  };

  const auto rule = [&](char fill) {
    std::string line = "+";
    for (std::size_t c = 0; c < ncols; ++c) {
      line += std::string(widths[c] + 2, fill);
      line += "+";
    }
    return line;
  };

  std::ostringstream out;
  std::size_t total_width = 1;
  for (std::size_t c = 0; c < ncols; ++c) total_width += widths[c] + 3;
  if (!title_.empty()) {
    const std::size_t space = total_width > title_.size()
                                  ? (total_width - title_.size()) / 2
                                  : 0;
    out << std::string(space, ' ') << title_ << "\n";
  }
  out << rule('-') << "\n";
  out << "|";
  for (std::size_t c = 0; c < ncols; ++c) {
    out << " " << pad(headers_[c], widths[c], Align::kCenter) << " |";
  }
  out << "\n" << rule('=') << "\n";

  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r].separator) {
      out << rule('-') << "\n";
      continue;
    }
    std::size_t height = 1;
    for (std::size_t c = 0; c < ncols; ++c) {
      height = std::max(height, wrapped[r][c].size());
    }
    for (std::size_t line = 0; line < height; ++line) {
      out << "|";
      for (std::size_t c = 0; c < ncols; ++c) {
        const std::string& cell =
            line < wrapped[r][c].size() ? wrapped[r][c][line] : std::string{};
        out << " " << pad(cell, widths[c], aligns_[c]) << " |";
      }
      out << "\n";
    }
  }
  out << rule('-') << "\n";
  return out.str();
}

}  // namespace oda
