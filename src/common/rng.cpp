#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oda {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::split(std::uint64_t tag) {
  // Mix the child tag with fresh output so distinct tags give independent
  // streams and repeated calls with the same tag give distinct streams.
  return from_draw(next(), tag);
}

Rng Rng::from_draw(std::uint64_t base, std::uint64_t tag) {
  return Rng(base ^ (tag * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ODA_REQUIRE(lo <= hi, "uniform bounds inverted");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ODA_REQUIRE(lo <= hi, "uniform_int bounds inverted");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling removes modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t r;
  do {
    r = next();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  ODA_REQUIRE(rate > 0.0, "exponential rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  ODA_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    double p = 1.0;
    std::int64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<std::int64_t>(x + 0.5);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  ODA_REQUIRE(xm > 0.0 && alpha > 0.0, "pareto parameters must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::weibull(double lambda, double k) {
  ODA_REQUIRE(lambda > 0.0 && k > 0.0, "weibull parameters must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return lambda * std::pow(-std::log(u), 1.0 / k);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  ODA_REQUIRE(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    ODA_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  ODA_REQUIRE(total > 0.0, "categorical weights sum to zero");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace oda
