// Minimal CSV reader/writer (RFC 4180 quoting) used to dump experiment
// series for external plotting and to load canned traces in tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace oda {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out);

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& cells, int precision = 6);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& out_;
};

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws ConfigError when absent.
  std::size_t column(const std::string& name) const;
  /// A whole column parsed as doubles (non-numeric cells become NaN).
  std::vector<double> numeric_column(const std::string& name) const;
};

/// Parses CSV text; first row is the header.
CsvTable parse_csv(const std::string& text);

}  // namespace oda
