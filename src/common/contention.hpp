// Per-rank lock contention accounting. The RAII wrappers in common/sync.hpp
// feed every contended acquisition (one that lost its try_lock fast path)
// into a fixed table of atomic wait statistics keyed by the lock's
// oda::lock_order rank. The table is plain atomics end to end — no locks,
// no allocation — so recording from inside a lock acquisition can never
// deadlock or invert the very hierarchy it measures. obs exports the table
// as oda_lock_wait_seconds / oda_lock_contended_total (see
// obs::register_lock_contention) — the uniform mechanism that replaced the
// store's one-off per-shard wait gauge.
//
// Disabled cost: one relaxed load of the arm flag per RAII acquisition.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace oda {

/// Runtime identity of a lock's level in the lock-order hierarchy
/// (common/sync.hpp lock_order markers), plus buckets for the leaf locks
/// that stay unranked in the static hierarchy but are still worth
/// attributing wait time to. Order mirrors lock_order (outermost first).
enum class LockRankId : std::uint8_t {
  kUnranked = 0,  // default: leaf locks with no declared rank
  kBus,
  kHealth,
  kStoreShard,
  kWal,
  kInterner,
  kMetrics,
  kTrace,
  kLog,
  kPool,        // BlockingQueue / ThreadPool idle wait (leaf)
  kThreadWatch, // watched-thread registry (leaf)
  kCount,
};

inline constexpr std::size_t kLockRankCount =
    static_cast<std::size_t>(LockRankId::kCount);

/// Stable label for metric export ("bus", "store_shard", ...).
const char* to_string(LockRankId rank) noexcept;

namespace contention {

/// Histogram bucket upper bounds (seconds) for lock wait times: 1us to
/// ~2s in x8 steps. Fixed at compile time so the stats table is all plain
/// atomics with static storage.
inline constexpr std::array<double, 8> kWaitBounds = {
    1e-6, 8e-6, 64e-6, 512e-6, 4.096e-3, 32.768e-3, 0.262144, 2.097152};

/// Per-rank wait statistics. All fields are monotonic counters written with
/// relaxed atomics from the lock wrappers' contended path; readers
/// (metric snapshots) tolerate torn cross-field views by construction —
/// each exported family is derived from one field read pass.
struct LockWaitStats {
  std::atomic<std::uint64_t> contended{0};      ///< acquisitions that waited
  std::atomic<std::uint64_t> wait_nanos{0};     ///< total wait, nanoseconds
  std::array<std::atomic<std::uint64_t>, kWaitBounds.size() + 1> buckets{};
};

/// The global table, indexed by LockRankId.
LockWaitStats& stats(LockRankId rank) noexcept;

/// Arms / disarms accounting process-wide (default: armed). Disarmed, every
/// RAII acquisition degenerates to a plain lock() behind one relaxed load.
void set_enabled(bool enabled) noexcept;
bool enabled() noexcept;

/// Records one contended acquisition of `wait_seconds` against `rank`.
/// Lock-free and allocation-free; callable while blocked-then-acquired.
void record_wait(LockRankId rank, double wait_seconds) noexcept;

/// Zeroes the whole table (tests). Not linearizable against concurrent
/// recorders; callers quiesce writers first.
void reset() noexcept;

/// One-pass snapshot of a rank's stats, shaped for histogram export. The
/// exported count is the sum of the bucket counts read in this pass, so the
/// +Inf bucket always equals the count even under concurrent writes.
struct Snapshot {
  std::uint64_t contended = 0;
  double wait_seconds = 0.0;
  std::array<std::uint64_t, kWaitBounds.size() + 1> buckets{};
};
Snapshot snapshot(LockRankId rank) noexcept;

}  // namespace contention
}  // namespace oda
