#include "common/config.hpp"

#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace oda {

Config Config::from_text(const std::string& text) {
  Config cfg;
  for (const auto& raw_line : split(text, '\n')) {
    std::string_view line = trim(raw_line);
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ConfigError("malformed config line (missing '='): " +
                        std::string(raw_line));
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    if (key.empty()) throw ConfigError("empty config key in: " + std::string(raw_line));
    cfg.values_[key] = value;
  }
  return cfg;
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}
void Config::set(const std::string& key, double value) {
  values_[key] = format_double(value, 10, true);
}
void Config::set(const std::string& key, std::int64_t value) {
  values_[key] = std::to_string(value);
}
void Config::set(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::optional<std::string> Config::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key) const {
  const auto v = raw(key);
  if (!v) throw ConfigError("missing config key: " + key);
  return *v;
}

std::string Config::get_string_or(const std::string& key,
                                  std::string fallback) const {
  return raw(key).value_or(std::move(fallback));
}

double Config::get_double(const std::string& key) const {
  const std::string v = get_string(key);
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw ConfigError("config key '" + key + "' is not a number: " + v);
  }
  return d;
}

double Config::get_double_or(const std::string& key, double fallback) const {
  return contains(key) ? get_double(key) : fallback;
}

std::int64_t Config::get_int(const std::string& key) const {
  const std::string v = get_string(key);
  char* end = nullptr;
  const long long i = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw ConfigError("config key '" + key + "' is not an integer: " + v);
  }
  return i;
}

std::int64_t Config::get_int_or(const std::string& key,
                                std::int64_t fallback) const {
  return contains(key) ? get_int(key) : fallback;
}

bool Config::get_bool(const std::string& key) const {
  const std::string v = to_lower(get_string(key));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ConfigError("config key '" + key + "' is not a boolean: " + v);
}

bool Config::get_bool_or(const std::string& key, bool fallback) const {
  return contains(key) ? get_bool(key) : fallback;
}

Config Config::scoped(const std::string& prefix) const {
  Config out;
  const std::string full = prefix + ".";
  for (const auto& [k, v] : values_) {
    if (starts_with(k, full)) out.values_[k.substr(full.size())] = v;
  }
  return out;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

std::string Config::to_text() const {
  std::ostringstream out;
  for (const auto& [k, v] : values_) out << k << " = " << v << "\n";
  return out.str();
}

}  // namespace oda
