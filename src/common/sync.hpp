// Annotated synchronization primitives: the only place in src/ allowed to
// touch <mutex>/<shared_mutex>/<condition_variable> directly (enforced by
// scripts/oda_lint.py's raw-mutex rule). Everything else locks through
// oda::Mutex / oda::SharedMutex and the RAII wrappers below, which carry
// Clang Thread Safety Analysis attributes — so a build with the `tsa`
// preset (-Wthread-safety -Wthread-safety-beta -Werror) machine-checks the
// locking discipline that used to live in comments:
//
//   * ODA_GUARDED_BY(mu) on a field: every access must hold mu;
//   * ODA_REQUIRES(mu) on a *_locked() helper: callers must hold mu;
//   * ODA_ACQUIRED_BEFORE / ODA_ACQUIRED_AFTER edges (via the lock_order
//     rank markers below): acquiring locks against the declared hierarchy
//     is a compile error, not a TSan-dynamic-luck deadlock.
//
// Off Clang, every attribute expands to nothing and the primitives are
// zero-cost forwarding wrappers, so GCC builds are bit-identical to the
// pre-annotation code. docs/STATIC_ANALYSIS.md ("Thread-safety analysis")
// documents the conventions, the lock-order hierarchy, and the suppression
// idiom for intentionally lock-free structures.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/contention.hpp"

// ---------------------------------------------------------------- attributes

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ODA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ODA_THREAD_ANNOTATION
#define ODA_THREAD_ANNOTATION(x)  // expands to nothing off Clang
#endif

/// Marks a class as a lockable capability; `name` appears in diagnostics.
#define ODA_CAPABILITY(name) ODA_THREAD_ANNOTATION(capability(name))
/// Marks an RAII class whose constructor acquires and destructor releases.
#define ODA_SCOPED_CAPABILITY ODA_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be accessed while holding the given capability.
#define ODA_GUARDED_BY(x) ODA_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be accessed while holding the given capability.
#define ODA_PT_GUARDED_BY(x) ODA_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function may only be called while holding the capability exclusively.
#define ODA_REQUIRES(...) \
  ODA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function may only be called while holding the capability (shared ok).
#define ODA_REQUIRES_SHARED(...) \
  ODA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability exclusively and does not release it.
#define ODA_ACQUIRE(...) ODA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ODA_ACQUIRE_SHARED(...) \
  ODA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (generic: matches however acquired).
#define ODA_RELEASE(...) ODA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ODA_RELEASE_SHARED(...) \
  ODA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function attempts the acquire; holds it iff the result equals arg 1.
#define ODA_TRY_ACQUIRE(...) \
  ODA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ODA_TRY_ACQUIRE_SHARED(...) \
  ODA_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (the function takes it itself).
#define ODA_EXCLUDES(...) ODA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Lock-order edges: this capability is acquired before/after the others.
/// Checked transitively under -Wthread-safety-beta.
#define ODA_ACQUIRED_BEFORE(...) \
  ODA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ODA_ACQUIRED_AFTER(...) \
  ODA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Tells the analysis the capability is held (runtime-verified elsewhere).
#define ODA_ASSERT_CAPABILITY(x) ODA_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the given capability.
#define ODA_RETURN_CAPABILITY(x) ODA_THREAD_ANNOTATION(lock_returned(x))
/// Last-resort opt-out, always with a justification comment; see
/// docs/STATIC_ANALYSIS.md for when this is acceptable.
#define ODA_NO_THREAD_SAFETY_ANALYSIS \
  ODA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace oda {

// ---------------------------------------------------------------- lock order
//
// Rank markers: zero-size capabilities that are never locked, only named in
// ODA_ACQUIRED_BEFORE/AFTER edges. A concrete mutex at level L is declared
// AFTER its level's marker and BEFORE the next level's marker; since the
// beta ordering check is transitive, acquiring any lower-level mutex while
// holding a higher-level one warns even across unrelated classes. The
// hierarchy (outermost first) mirrors the actual call nesting of the data
// plane — see docs/STATIC_ANALYSIS.md for the rationale per level:
//
//   bus -> health -> store shard -> wal -> interner -> metrics -> trace -> log
//
// Leaf locks that never nest around other locks (BlockingQueue, ThreadPool
// idle wait, FaultInjector stuck state, CaptureSink) stay unranked: the
// analysis simply has no edges for them, which is the truthful contract.

/// A named level in the lock-order hierarchy. Never actually locked.
class ODA_CAPABILITY("lock rank") LockRank {
 public:
  constexpr LockRank() = default;
  LockRank(const LockRank&) = delete;
  LockRank& operator=(const LockRank&) = delete;
};

namespace lock_order {
inline LockRank bus;
inline LockRank health ODA_ACQUIRED_AFTER(bus);
inline LockRank store_shard ODA_ACQUIRED_AFTER(health);
inline LockRank wal ODA_ACQUIRED_AFTER(store_shard);
inline LockRank interner ODA_ACQUIRED_AFTER(wal);
inline LockRank metrics ODA_ACQUIRED_AFTER(interner);
inline LockRank trace ODA_ACQUIRED_AFTER(metrics);
inline LockRank log ODA_ACQUIRED_AFTER(trace);
}  // namespace lock_order

// The static rank markers above have a runtime twin: LockRankId
// (common/contention.hpp). A mutex constructed with its LockRankId feeds
// per-rank wait-time statistics whenever an RAII acquisition below loses
// its try_lock fast path, giving the "which lock tier are we waiting on"
// attribution that the compile-time hierarchy cannot (it only proves
// ordering). Unranked mutexes account under LockRankId::kUnranked.

// ---------------------------------------------------------------- primitives

/// std::mutex with thread-safety-analysis attributes. Prefer the MutexLock
/// RAII wrapper; call lock()/unlock() directly only where RAII cannot
/// express the shape.
class ODA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Tags the mutex with its lock-order tier for contention accounting.
  explicit Mutex(LockRankId rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ODA_ACQUIRE() { mu_.lock(); }
  void unlock() ODA_RELEASE() { mu_.unlock(); }
  bool try_lock() ODA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  LockRankId rank() const noexcept { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  LockRankId rank_ = LockRankId::kUnranked;
};

/// std::shared_mutex with thread-safety-analysis attributes. Writers use
/// WriterLock, readers ReaderLock.
class ODA_CAPABILITY("shared mutex") SharedMutex {
 public:
  SharedMutex() = default;
  /// Tags the mutex with its lock-order tier for contention accounting.
  explicit SharedMutex(LockRankId rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ODA_ACQUIRE() { mu_.lock(); }
  void unlock() ODA_RELEASE() { mu_.unlock(); }
  bool try_lock() ODA_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() ODA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() ODA_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() ODA_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  LockRankId rank() const noexcept { return rank_; }

 private:
  std::shared_mutex mu_;
  LockRankId rank_ = LockRankId::kUnranked;
};

// ------------------------------------------------------------- RAII wrappers
//
// Every wrapper constructor runs the same contention-accounting shape: one
// relaxed load of the arm flag, then a try_lock fast path with zero clock
// reads; only an acquisition that actually waited pays for two steady_clock
// reads, and that wait is recorded against the mutex's LockRankId and kept
// in waited_s() for callers that attribute per-instance (the store's
// per-shard gauge). Direct Mutex::lock() calls and the CondVar reacquire
// stay unaccounted — attribution covers the RAII idiom the codebase uses
// everywhere else.

/// Scoped exclusive lock on a Mutex (the std::lock_guard replacement).
class ODA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ODA_ACQUIRE(mu) : mu_(&mu) {
    if (!contention::enabled()) {
      mu.lock();
      return;
    }
    if (mu.try_lock()) return;
    const auto wait_start = std::chrono::steady_clock::now();
    mu.lock();
    waited_s_ = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wait_start)
                    .count();
    contention::record_wait(mu.rank(), waited_s_);
  }
  ~MutexLock() ODA_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Seconds this acquisition blocked (0.0 on the fast path).
  double waited_s() const noexcept { return waited_s_; }

 private:
  friend class CondVar;
  Mutex* mu_;
  double waited_s_ = 0.0;
};

/// Scoped exclusive lock on a SharedMutex (the std::unique_lock replacement
/// for writer paths).
class ODA_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ODA_ACQUIRE(mu) : mu_(&mu) {
    if (!contention::enabled()) {
      mu.lock();
      return;
    }
    if (mu.try_lock()) return;
    const auto wait_start = std::chrono::steady_clock::now();
    mu.lock();
    waited_s_ = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wait_start)
                    .count();
    contention::record_wait(mu.rank(), waited_s_);
  }

  ~WriterLock() ODA_RELEASE() { mu_->unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  /// Seconds this acquisition blocked (0.0 on the fast path).
  double waited_s() const noexcept { return waited_s_; }

 private:
  SharedMutex* mu_;
  double waited_s_ = 0.0;
};

/// Scoped shared (reader) lock on a SharedMutex.
class ODA_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ODA_ACQUIRE_SHARED(mu) : mu_(&mu) {
    if (!contention::enabled()) {
      mu.lock_shared();
      return;
    }
    if (mu.try_lock_shared()) return;
    const auto wait_start = std::chrono::steady_clock::now();
    mu.lock_shared();
    waited_s_ = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wait_start)
                    .count();
    contention::record_wait(mu.rank(), waited_s_);
  }
  ~ReaderLock() ODA_RELEASE() { mu_->unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

  /// Seconds this acquisition blocked (0.0 on the fast path).
  double waited_s() const noexcept { return waited_s_; }

 private:
  SharedMutex* mu_;
  double waited_s_ = 0.0;
};

// ------------------------------------------------------------------- condvar

/// Condition variable bound to oda::Mutex. wait() takes the Mutex itself
/// (annotated ODA_REQUIRES) instead of a predicate lambda: the analysis
/// cannot see held locks inside wait(lock, pred) lambdas, so waiters are
/// written as explicit `while (!cond) cv.wait(mu);` loops — which keeps the
/// guarded-field accesses in the loop condition visibly under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// From the analysis' point of view the mutex is held throughout, which
  /// is exactly the guarantee the caller's guarded accesses rely on.
  void wait(Mutex& mu) ODA_REQUIRES(mu) {
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace oda
