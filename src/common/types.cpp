#include "common/types.hpp"

#include <cstdio>

namespace oda {

std::string format_duration(Duration d) {
  const char* sign = d < 0 ? "-" : "";
  if (d < 0) d = -d;
  const Duration days = d / kDay;
  const Duration hours = (d % kDay) / kHour;
  const Duration minutes = (d % kHour) / kMinute;
  const Duration seconds = d % kMinute;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld", sign,
                  static_cast<long long>(days), static_cast<long long>(hours),
                  static_cast<long long>(minutes), static_cast<long long>(seconds));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld", sign,
                  static_cast<long long>(hours), static_cast<long long>(minutes),
                  static_cast<long long>(seconds));
  }
  return buf;
}

std::string format_time(TimePoint t) {
  if (t < 0) return "t" + format_duration(t);
  const Duration days = t / kDay;
  const Duration hours = (t % kDay) / kHour;
  const Duration minutes = (t % kHour) / kMinute;
  const Duration seconds = t % kMinute;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "d%02lld %02lld:%02lld:%02lld",
                static_cast<long long>(days), static_cast<long long>(hours),
                static_cast<long long>(minutes), static_cast<long long>(seconds));
  return buf;
}

}  // namespace oda
