#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace oda {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mu;
Log::Sink g_sink;  // guarded by g_sink_mu
}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

// relaxed: the level is an independent filter flag — no other data is
// published through it, so threads may observe a level change late at worst.
void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mu);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, message);
  } else {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
  }
}

}  // namespace oda
