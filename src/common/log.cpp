#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "common/sync.hpp"

namespace oda {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// The innermost lock in the hierarchy: logging happens under every other
// subsystem's lock, so nothing may be acquired while holding it.
Mutex g_sink_mu ODA_ACQUIRED_AFTER(lock_order::log){LockRankId::kLog};
Log::Sink g_sink ODA_GUARDED_BY(g_sink_mu);

/// Formats the current wall-clock time as "2026-08-07T14:03:11" into `out`
/// (must hold >= 20 bytes). Seconds resolution keeps the default sink cheap
/// and diffable; sub-second timing belongs to the tracer, not the log.
void format_timestamp(char* out, std::size_t out_size) {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &now);
#else
  localtime_r(&now, &tm_buf);
#endif
  if (std::strftime(out, out_size, "%Y-%m-%dT%H:%M:%S", &tm_buf) == 0) {
    out[0] = '\0';
  }
}
}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

// relaxed: the level is an independent filter flag — no other data is
// published through it, so threads may observe a level change late at worst.
void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_sink(Sink sink) {
  MutexLock lock(g_sink_mu);
  g_sink = std::move(sink);
}

std::size_t Log::thread_id() {
  // relaxed: the counter only hands out unique ids; no ordering is implied
  // between threads that happen to log around the same time.
  static std::atomic<std::size_t> next{1};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Log::write(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  MutexLock lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, message);
  } else {
    char ts[32];
    format_timestamp(ts, sizeof(ts));
    std::fprintf(stderr, "[%s] [%s] [t%zu] %s\n", ts, log_level_name(level),
                 thread_id(), message.c_str());
  }
}

CaptureSink::CaptureSink(std::size_t capacity) : entries_(capacity) {
  Log::set_sink([this](LogLevel level, const std::string& message) {
    MutexLock lock(mu_);
    entries_.push(Entry{level, message});
  });
}

CaptureSink::~CaptureSink() { Log::set_sink(nullptr); }

std::vector<std::string> CaptureSink::lines() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out.push_back("[" + std::string(log_level_name(e.level)) + "] " +
                  e.message);
  }
  return out;
}

bool CaptureSink::contains(const std::string& substring) const {
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].message.find(substring) != std::string::npos) return true;
  }
  return false;
}

std::size_t CaptureSink::count(LogLevel level) const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].level == level) ++n;
  }
  return n;
}

std::size_t CaptureSink::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void CaptureSink::clear() {
  MutexLock lock(mu_);
  entries_.clear();
}

}  // namespace oda
