#include "common/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace oda {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative wildcard matching with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string format_double(double v, int precision, bool trim_zeros) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  if (trim_zeros && s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string si_format(double v, int precision) {
  static constexpr const char* kPrefixes[] = {"", "k", "M", "G", "T", "P"};
  const double av = std::abs(v);
  int idx = 0;
  double scaled = v;
  while (std::abs(scaled) >= 1000.0 && idx < 5) {
    scaled /= 1000.0;
    ++idx;
  }
  if (av < 1000.0) idx = 0, scaled = v;
  return format_double(scaled, precision, true) + kPrefixes[idx];
}

}  // namespace oda
