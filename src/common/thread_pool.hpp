// Fixed-size thread pool with future-returning submission and a parallel_for
// helper. Collectors and batch analytics use it to fan work across cores.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/sync.hpp"
#include "common/trace_context.hpp"

// Defined PUBLIC on oda_common by CMake; default on so bare compiles of this
// header (lint self-contained check) see the full code path.
#ifndef ODA_TRACING_ENABLED
#define ODA_TRACING_ENABLED 1
#endif

namespace oda {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Self-instrumentation counters (see obs::register_thread_pool): tasks
  /// submitted, finished, and submitted-after-shutdown (ran inline), plus
  /// the current backlog. All monotonic except pending().
  // relaxed (all four): standalone statistics; they synchronize nothing.
  std::uint64_t submitted_count() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t completed_count() const {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected_count() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  std::size_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }
  /// Workers currently blocked in (or entering) the queue pop — the
  /// "idle capacity right now" gauge for scheduler attribution.
  // relaxed: statistics gauge; synchronizes nothing.
  std::size_t parked_workers() const {
    return parked_.load(std::memory_order_relaxed);
  }

  /// Installs a per-task timing hook: hook(queue_wait_s, run_s) is invoked
  /// on the worker after each queued task finishes (inline-run rejected
  /// tasks are not timed — they never waited in the queue). Install during
  /// setup, before tasks are submitted, and at most once per quiescent
  /// period: the hook object itself is unsynchronized after arming.
  /// obs::register_thread_pool uses this to fill the
  /// oda_pool_task_{queue_wait,run}_seconds histograms.
  void set_task_timing_hook(std::function<void(double, double)> hook);

  /// Submits a callable; the returned future yields its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    // relaxed: the increment only needs to be ordered before the matching
    // decrement in task_done(), and it is — the queue's mutex (push below /
    // pop in worker_loop) releases/acquires between them. wait_idle() callers
    // must themselves order their submits before waiting; no memory order on
    // this counter could wait for a task that has not been submitted yet.
    pending_.fetch_add(1, std::memory_order_relaxed);
    // relaxed: statistics counter (see submitted_count()).
    submitted_.fetch_add(1, std::memory_order_relaxed);
    // Queue-wait attribution: when a timing hook is armed, stamp the
    // enqueue time so the worker can report wait and run durations.
    // acquire: pairs with the release in set_task_timing_hook so the hook
    // object is fully constructed before the worker invokes it.
    const bool timed = timing_armed_.load(std::memory_order_acquire);
    const auto enqueued = timed ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
#if ODA_TRACING_ENABLED
    // Capture the submitter's trace context so spans opened inside the task
    // stay children of the span that submitted it (causal tracing across the
    // pool boundary). Costs one thread-local read + a 16-byte copy.
    const bool accepted = tasks_.push(
        [this, task, timed, enqueued, ctx = current_trace_context()] {
          TraceContextScope trace_scope(ctx);
          if (timed) {
            const auto started = std::chrono::steady_clock::now();
            (*task)();
            note_task_timing(enqueued, started);
          } else {
            (*task)();
          }
        });
#else
    const bool accepted = tasks_.push([this, task, timed, enqueued] {
      if (timed) {
        const auto started = std::chrono::steady_clock::now();
        (*task)();
        note_task_timing(enqueued, started);
      } else {
        (*task)();
      }
    });
#endif
    if (!accepted) {
      // Pool already shut down: run inline so the future is still satisfied.
      // relaxed: statistics counter (see rejected_count()).
      rejected_.fetch_add(1, std::memory_order_relaxed);
      (*task)();
      task_done();
    }
    return result;
  }

  /// Runs fn(i) for i in [begin, end) across the pool and waits. Work is
  /// split into chunks of `grain` indices claimed from a shared atomic
  /// cursor, so threads that finish early steal the remaining chunks and
  /// uneven per-index costs still balance; the calling thread participates,
  /// so only min(thread_count, chunks - 1) helper tasks are ever submitted
  /// (a 1000-index loop no longer pays 1000 task/queue round-trips).
  /// grain == 0 auto-tunes to ~8 chunks per thread.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Chunk-granular variant: body(lo, hi) receives each claimed half-open
  /// chunk, for callers that amortize per-chunk setup (RNG splits, trace
  /// spans, buffers) across the indices inside it. Same claiming, balancing,
  /// and caller-participation semantics as parallel_for.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t grain = 0);

  /// Lifetime totals for the chunked parallel_for machinery: calls that
  /// actually fanned out, and chunks claimed (by helpers or the caller).
  // relaxed (both): standalone statistics; they synchronize nothing.
  std::uint64_t parallel_for_calls() const {
    return pf_calls_.load(std::memory_order_relaxed);
  }
  std::uint64_t parallel_for_chunks_claimed() const {
    return pf_chunks_.load(std::memory_order_relaxed);
  }

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Stops accepting tasks and joins workers (also done by the destructor).
  void shutdown();

 private:
  void worker_loop();
  void task_done();
  void note_task_timing(std::chrono::steady_clock::time_point enqueued,
                        std::chrono::steady_clock::time_point started);

  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> parked_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> pf_calls_{0};
  std::atomic<std::uint64_t> pf_chunks_{0};
  /// Written once during setup (set_task_timing_hook), then read by
  /// workers behind the timing_armed_ acquire/release edge.
  std::function<void(double, double)> timing_hook_;
  std::atomic<bool> timing_armed_{false};
  /// Leaf lock (unranked): only pairs idle_cv_ with the pending_ == 0 edge;
  /// no other lock is ever taken while holding it.
  Mutex idle_mu_{LockRankId::kPool};
  CondVar idle_cv_;
};

}  // namespace oda
