// ASCII table renderer. The descriptive dashboards, the Table I regenerator
// and the bench harness all print through this so output stays uniform.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace oda {

enum class Align { kLeft, kRight, kCenter };

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; missing cells are blank, extra cells are dropped.
  void add_row(std::vector<std::string> cells);
  /// Appends a horizontal separator between the rows added before/after.
  void add_separator();

  void set_align(std::size_t column, Align align);
  /// Caps a column's width; cell content wraps at word boundaries.
  void set_max_width(std::size_t column, std::size_t width);
  void set_title(std::string title);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }

  /// Renders with unicode-free box drawing (pipes and dashes).
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> wrap_cell(const std::string& text,
                                     std::size_t width) const;

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  std::vector<Align> aligns_;
  std::vector<std::size_t> max_widths_;
};

}  // namespace oda
