#include "common/trace_context.hpp"

#include <atomic>

namespace oda {

namespace {

thread_local TraceContext t_context;

// splitmix64 finalizer: bijective, so distinct counter values can never
// collide, but the output looks uniformly random in hex dumps.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TraceContext current_trace_context() noexcept { return t_context; }

TraceContext exchange_trace_context(TraceContext ctx) noexcept {
  const TraceContext prev = t_context;
  t_context = ctx;
  return prev;
}

std::uint64_t next_trace_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  // relaxed: uniqueness comes from the atomic RMW itself; ids carry no
  // ordering obligations with respect to any other memory.
  const std::uint64_t id = mix64(counter.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;  // 0 is the "no trace" sentinel
}

}  // namespace oda
