// Small string helpers used by the table/CSV/config machinery.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace oda {

std::vector<std::string> split(std::string_view s, char delim);
std::string_view trim(std::string_view s);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Glob-style match where '*' matches any run of characters and '?' one
/// character. Used for wildcard sensor-topic subscriptions.
bool glob_match(std::string_view pattern, std::string_view text);

/// Fixed-precision double formatting ("%.3f" by default) with trailing-zero
/// trimming option.
std::string format_double(double v, int precision = 3, bool trim_zeros = false);

/// Formats v with SI prefix (e.g. 1234567 -> "1.23M").
std::string si_format(double v, int precision = 2);

}  // namespace oda
