// Fixed-capacity circular buffer. The time-series store keeps one of these
// per sensor: appends are O(1) and old samples are overwritten once capacity
// is reached, bounding memory for unbounded telemetry streams.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace oda {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : buf_(capacity), capacity_(capacity) {
    ODA_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  }

  /// Appends an element, overwriting the oldest when full.
  void push(T value) {
    buf_[head_] = std::move(value);
    // head_ < capacity_ always holds, so a compare beats the integer divide
    // a general modulo costs on this per-sample hot path.
    if (++head_ == capacity_) head_ = 0;
    if (size_ < capacity_) ++size_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Element i in insertion order (0 = oldest retained).
  const T& operator[](std::size_t i) const {
    ODA_REQUIRE(i < size_, "ring buffer index out of range");
    return buf_[(head_ + capacity_ - size_ + i) % capacity_];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// The retained elements as (at most) two contiguous spans, oldest-first:
  /// concatenating first and second yields the same sequence as indexing 0
  /// .. size()-1. Lets readers walk the storage directly instead of paying a
  /// modulo per element; the spans are invalidated by the next push().
  std::pair<std::span<const T>, std::span<const T>> spans() const {
    const std::size_t start = (head_ + capacity_ - size_) % capacity_;
    const std::size_t first_len = std::min(size_, capacity_ - start);
    return {std::span<const T>(buf_.data() + start, first_len),
            std::span<const T>(buf_.data(), size_ - first_len)};
  }

  /// Copies retained elements oldest-first.
  std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::vector<T> buf_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace oda
