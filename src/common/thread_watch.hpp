// Process-wide registry of "watched" pipeline threads for the sampling
// profiler (obs/profiler.hpp). Threads opt in with a WatchedThreadScope at
// the top of their loop (ThreadPool workers do this automatically); the
// registry records the pthread handle, a role label, and the thread's stack
// bounds so an async-signal-safe backtrace walker can bounds-check frame
// pointers without touching /proc from a handler.
//
// Liveness contract (what makes pthread_kill() safe): a thread appears in
// the registry only between its WatchedThreadScope constructor and
// destructor, and removal takes the registry lock. for_each() also runs
// under that lock, so any record it visits belongs to a thread that cannot
// have exited yet — signalling it is race-free. The registry never frees a
// record while a consumer holds its shared_ptr, so per-thread profiler
// attachments survive thread exit until the profiler drops them.
//
// With ODA_PROFILE=OFF (-DODA_PROFILING_ENABLED=0) the scope compiles to an
// empty object and registration is skipped entirely.
#pragma once

#include <pthread.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/sync.hpp"

// Defined PUBLIC on oda_common by CMake; default on so bare compiles of this
// header (lint self-contained check) see the full code path.
#ifndef ODA_PROFILING_ENABLED
#define ODA_PROFILING_ENABLED 1
#endif

namespace oda {

/// One registered thread. The struct is shared with an async-signal
/// context: the profiler's SIGPROF handler reads role/stack bounds and the
/// profiler_data attachment from the interrupted thread itself, so those
/// fields are written once at registration (before the thread can be
/// signalled) or through the atomic slot.
struct WatchedThread {
  pthread_t handle{};
  std::uint64_t os_tid = 0;       ///< kernel tid (gettid), for trace/export
  const char* role = "";          ///< static label, e.g. "pool.worker"
  const char* stack_lo = nullptr; ///< lowest valid stack address
  const char* stack_hi = nullptr; ///< one past the highest stack address
  /// Opaque per-thread attachment owned by the profiler (its sample ring).
  /// Written with release by the profiler, read with acquire from the
  /// signal handler on this thread.
  std::atomic<void*> profiler_data{nullptr};
};

/// The registry. All methods are thread-safe.
class ThreadWatchRegistry {
 public:
  static ThreadWatchRegistry& global();

  /// Hook invoked (under the registry lock) for every thread registered
  /// after installation — the running profiler uses it to attach sample
  /// rings to late-spawned threads. The hook must not call back into the
  /// registry. Pass nullptr to uninstall.
  using RegisterHook = void (*)(WatchedThread&);
  void set_register_hook(RegisterHook hook) noexcept;

  /// Visits every currently live watched thread under the registry lock:
  /// records visited here belong to threads that cannot exit until fn
  /// returns (see liveness contract above). fn must not register or
  /// unregister threads.
  void for_each(const std::function<void(WatchedThread&)>& fn);

  std::size_t size() const;

 private:
  friend class WatchedThreadScope;

  std::shared_ptr<WatchedThread> add(const char* role);
  void remove(const WatchedThread* rec);

  /// Leaf lock (kThreadWatch): held across for_each callbacks, which only
  /// signal threads / flip atomic attachments — never take another lock.
  mutable Mutex mu_{LockRankId::kThreadWatch};
  std::vector<std::shared_ptr<WatchedThread>> threads_ ODA_GUARDED_BY(mu_);
  std::atomic<RegisterHook> hook_{nullptr};
};

/// The calling thread's registration record, or nullptr when unregistered.
/// Async-signal-safe (one thread-local pointer read): this is how the
/// SIGPROF handler finds its own ring.
WatchedThread* current_watched_thread() noexcept;

/// RAII registration of the current thread. Nested scopes on one thread are
/// inert (the outermost wins); with profiling compiled out the scope is an
/// empty object.
class WatchedThreadScope {
 public:
  explicit WatchedThreadScope(const char* role);
  ~WatchedThreadScope();

  WatchedThreadScope(const WatchedThreadScope&) = delete;
  WatchedThreadScope& operator=(const WatchedThreadScope&) = delete;

 private:
  std::shared_ptr<WatchedThread> rec_;
};

}  // namespace oda
