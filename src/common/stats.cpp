#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace oda {

// ---------------------------------------------------------------- RunningStats

void RunningStats::add(double x) {
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - m1_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  m1_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3 * n + 3) + 6 * delta_n2 * m2_ - 4 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2) - 3 * delta_n * m2_;
  m2_ += term1;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double n = na + nb;
  const double delta = o.m1_ - m1_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m1 = (na * m1_ + nb * o.m1_) / n;
  const double m2 = m2_ + o.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + o.m3_ + delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * o.m2_ - nb * m2_) / n;
  const double m4 = m4_ + o.m4_ +
                    delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
                    6.0 * delta2 * (na * na * o.m2_ + nb * nb * m2_) / (n * n) +
                    4.0 * delta * (na * o.m3_ - nb * m3_) / n;
  m1_ = m1;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::skewness() const {
  if (n_ < 3 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningStats::kurtosis() const {
  if (n_ < 4 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

// ----------------------------------------------------------------- P2Quantile

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  ODA_REQUIRE(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
  std::memset(heights_, 0, sizeof(heights_));
  for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q_;
  desired_[2] = 1 + 4 * q_;
  desired_[3] = 3 + 2 * q_;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q_ / 2;
  increments_[2] = q_;
  increments_[3] = (1 + q_) / 2;
  increments_[4] = 1;
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  ++count_;
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      // Parabolic (P²) interpolation of the marker height.
      const double new_height =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((below + sign) * (heights_[i + 1] - heights_[i]) / above +
               (above - sign) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < new_height && new_height < heights_[i + 1]) {
        heights_[i] = new_height;
      } else {
        // Fall back to linear interpolation when the parabola overshoots.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the few stored samples.
    double tmp[5];
    std::copy(heights_, heights_ + count_, tmp);
    std::sort(tmp, tmp + count_);
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return tmp[lo] + frac * (tmp[hi] - tmp[lo]);
  }
  return heights_[2];
}

// ----------------------------------------------------------------------- Ewma

Ewma::Ewma(double alpha) : alpha_(alpha) {
  ODA_REQUIRE(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0,1]");
}

void Ewma::add(double x) {
  if (!initialized_) {
    mean_ = x;
    var_ = 0.0;
    initialized_ = true;
    return;
  }
  const double delta = x - mean_;
  mean_ += alpha_ * delta;
  var_ = (1.0 - alpha_) * (var_ + alpha_ * delta * delta);
}

double Ewma::stddev() const { return std::sqrt(var_); }

// ------------------------------------------------------------------ Histogram

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  ODA_REQUIRE(hi > lo, "histogram range must be non-empty");
  ODA_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}
double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + static_cast<double>(i + 1) * width_;
}

double Histogram::quantile(double q) const {
  ODA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return lo_;
  const double target = q * static_cast<double>(in_range);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac = counts_[i] == 0
                              ? 0.0
                              : (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::vector<double> Histogram::pmf() const {
  std::vector<double> out(counts_.size(), 0.0);
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(in_range);
  }
  return out;
}

// -------------------------------------------------------------- RollingWindow

RollingWindow::RollingWindow(std::size_t capacity) : capacity_(capacity) {
  ODA_REQUIRE(capacity > 0, "rolling window capacity must be positive");
}

void RollingWindow::add(double x) {
  if (window_.size() == capacity_) {
    const double old = window_.front();
    window_.pop_front();
    sum_ -= old;
    sum_sq_ -= old * old;
  }
  window_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
}

double RollingWindow::mean() const {
  return window_.empty() ? 0.0 : sum_ / static_cast<double>(window_.size());
}

double RollingWindow::variance() const {
  const std::size_t n = window_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  // Guard against catastrophic cancellation producing tiny negatives.
  const double v = (sum_sq_ - static_cast<double>(n) * m * m) /
                   static_cast<double>(n - 1);
  return v > 0.0 ? v : 0.0;
}

double RollingWindow::stddev() const { return std::sqrt(variance()); }

double RollingWindow::min() const {
  ODA_REQUIRE(!window_.empty(), "min of empty window");
  return *std::min_element(window_.begin(), window_.end());
}

double RollingWindow::max() const {
  ODA_REQUIRE(!window_.empty(), "max of empty window");
  return *std::max_element(window_.begin(), window_.end());
}

double RollingWindow::quantile(double q) const {
  const auto v = to_vector();
  return oda::quantile(v, q);
}

std::vector<double> RollingWindow::to_vector() const {
  return std::vector<double>(window_.begin(), window_.end());
}

void RollingWindow::clear() {
  window_.clear();
  sum_ = sum_sq_ = 0.0;
}

// -------------------------------------------------------------- batch helpers

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  ODA_REQUIRE(!xs.empty(), "quantile of empty span");
  ODA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double mad(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double med = median(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) dev[i] = std::abs(xs[i] - med);
  return 1.4826 * median(dev);
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  ODA_REQUIRE(xs.size() == ys.size(), "correlation size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  const std::size_t n = xs.size();
  if (lag >= n || n < 2) return 0.0;
  const double m = mean(xs);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    den += (xs[i] - m) * (xs[i] - m);
  }
  if (den <= 0.0) return 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    num += (xs[i] - m) * (xs[i + lag] - m);
  }
  return num / den;
}

}  // namespace oda
