// Deterministic random number generation.
//
// Every stochastic component in the stack draws from an explicitly seeded
// Rng so a whole simulation is reproducible from a single root seed.
// xoshiro256** is used as the core generator (fast, high quality) with
// SplitMix64 for seeding and stream splitting.
#pragma once

#include <cstdint>
#include <vector>

namespace oda {

/// SplitMix64 step: used to expand seeds and derive independent streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL);

  /// Derives an independent child stream; children with distinct tags are
  /// statistically independent of the parent and of each other.
  Rng split(std::uint64_t tag);

  /// Derives a child stream from an already-drawn base value without
  /// touching any generator state. Safe to call concurrently: draw `base`
  /// once serially (one next()), then fan out with per-call distinct tags.
  static Rng from_draw(std::uint64_t base, std::uint64_t tag);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second variate).
  double normal();
  double normal(double mean, double stddev);
  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate);
  /// Poisson-distributed count with given mean (Knuth for small, normal
  /// approximation for large means).
  std::int64_t poisson(double mean);
  /// Log-normal parameterized by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma);
  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed runtimes).
  double pareto(double xm, double alpha);
  /// Weibull with scale lambda and shape k (failure times).
  double weibull(double lambda, double k);
  /// True with probability p.
  bool bernoulli(double p);
  /// Index drawn from unnormalized weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace oda
