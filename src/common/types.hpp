// Core scalar types shared across the ODA stack.
//
// The whole library runs on a *simulated* clock: time is an integer number
// of seconds since the simulation epoch. Keeping the representation integral
// (rather than double) makes time arithmetic exact and keeps runs bit-for-bit
// reproducible across platforms.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace oda {

/// Seconds since the simulation epoch.
using TimePoint = std::int64_t;

/// A span of simulated seconds.
using Duration = std::int64_t;

inline constexpr TimePoint kTimeMin = std::numeric_limits<TimePoint>::min();
inline constexpr TimePoint kTimeMax = std::numeric_limits<TimePoint>::max();

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 3600;
inline constexpr Duration kDay = 86400;
inline constexpr Duration kWeek = 7 * kDay;

/// Renders a duration as a compact human string, e.g. "2d 03:15:42".
std::string format_duration(Duration d);

/// Renders a time point as "dDD HH:MM:SS" relative to the sim epoch.
std::string format_time(TimePoint t);

/// Unit conversion helpers. Telemetry values are plain doubles; the sensor
/// catalog carries the unit as metadata, and these constants keep conversion
/// factors out of call sites.
namespace units {
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kWattsPerKilowatt = 1e3;
inline constexpr double kJoulesPerKilowattHour = 3.6e6;

inline constexpr double celsius_to_kelvin(double c) { return c + 273.15; }
inline constexpr double kelvin_to_celsius(double k) { return k - 273.15; }
inline constexpr double watts_to_kilowatts(double w) { return w / 1e3; }
inline constexpr double joules_to_kwh(double j) { return j / kJoulesPerKilowattHour; }
}  // namespace units

}  // namespace oda
