// Bounded lock-free single-producer/single-consumer queue (Lamport-style
// with C++11 atomics). Used on the hot path between a telemetry producer
// and its collector thread where a mutex would serialize the pipeline.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/error.hpp"

namespace oda {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two; one slot is kept empty to
  /// distinguish full from empty, so usable capacity is `capacity`.
  explicit SpscQueue(std::size_t capacity) {
    ODA_REQUIRE(capacity > 0, "queue capacity must be positive");
    std::size_t cap = 1;
    while (cap < capacity + 1) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the queue is full.
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buf_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when the queue is empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(buf_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  /// Approximate size; exact only when called from the consumer with a
  /// quiescent producer (and vice versa).
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace oda
