// Bounded lock-free single-producer/single-consumer queue (Lamport-style
// with C++11 atomics). Used on the hot path between a telemetry producer
// and its collector thread where a mutex would serialize the pipeline.
//
// Thread-safety analysis: deliberately outside the annotated-mutex world of
// common/sync.hpp (docs/STATIC_ANALYSIS.md). There is no capability here —
// exclusion is by role (one producer thread owns head_ and slot writes, one
// consumer thread owns tail_ and slot reads) and the acquire/release index
// pair is the entire synchronization protocol. That contract is documented
// per-access below and exercised under TSan; a mutex annotation would
// misstate it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace oda {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two; one slot is kept empty to
  /// distinguish full from empty, so usable capacity is `capacity`.
  explicit SpscQueue(std::size_t capacity) {
    ODA_REQUIRE(capacity > 0, "queue capacity must be positive");
    std::size_t cap = 1;
    while (cap < capacity + 1) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the queue is full; the argument is
  /// left untouched in that case, so a move-only payload survives a failed
  /// push and the caller can retry.
  bool try_push(const T& value) { return push_impl(value); }
  bool try_push(T&& value) { return push_impl(std::move(value)); }

  /// Pushes that returned false because the queue was full — the
  /// data-plane drop signal (see obs::register_spsc_queue). Written only by
  /// the producer; readable from any thread.
  std::uint64_t rejected_count() const {
    // relaxed: standalone statistics counter; synchronizes nothing.
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Consumer side. Returns nullopt when the queue is empty.
  std::optional<T> try_pop() {
    // relaxed: tail_ is written only by the consumer (this thread), so this
    // load can never observe a stale value; no ordering is needed to read
    // your own index.
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    // acquire: pairs with the producer's release store to head_ — it makes
    // the producer's write to buf_[tail] visible before we move from it.
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(buf_[tail]);
    // release: pairs with the producer's acquire load of tail_ — the slot
    // must be vacated (moved from) before the producer may reuse it.
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  /// Approximate size; exact only when called from the consumer with a
  /// quiescent producer (and vice versa).
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  template <typename U>
  bool push_impl(U&& value) {
    // relaxed: head_ is written only by the producer (this thread); reading
    // your own index needs no ordering.
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    // acquire: pairs with the consumer's release store to tail_ — the
    // consumer must have finished moving out of buf_[head] (one lap ago)
    // before we overwrite the slot.
    if (next == tail_.load(std::memory_order_acquire)) {
      // relaxed: statistics counter (see rejected_count()).
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    buf_[head] = std::forward<U>(value);
    // release: pairs with the consumer's acquire load of head_ — publishes
    // the buf_[head] write before the slot becomes poppable.
    head_.store(next, std::memory_order_release);
    return true;
  }

  std::vector<T> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace oda
