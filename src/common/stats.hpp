// Streaming statistics: single-pass accumulators used throughout telemetry
// and analytics. All accumulators are O(1) memory and numerically stable
// (Welford updates), suitable for unbounded sensor streams.
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <span>
#include <vector>

namespace oda {

/// Welford running moments: mean/variance/min/max plus skewness/kurtosis.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? m1_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return m1_ * static_cast<double>(n_); }
  /// Fisher skewness g1; 0 when undefined.
  double skewness() const;
  /// Excess kurtosis g2; 0 when undefined.
  double kurtosis() const;

 private:
  std::size_t n_ = 0;
  double m1_ = 0.0, m2_ = 0.0, m3_ = 0.0, m4_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// P² streaming quantile estimator (Jain & Chlamtac 1985): estimates a single
/// quantile in O(1) memory without storing samples.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);

  void add(double x);
  /// Current estimate; exact while fewer than five samples were seen.
  double value() const;
  std::size_t count() const { return count_; }
  double quantile() const { return q_; }

 private:
  double q_;
  std::size_t count_ = 0;
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
};

/// Exponentially weighted moving average / variance.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha);

  void add(double x);
  bool empty() const { return !initialized_; }
  double mean() const { return mean_; }
  double variance() const { return var_; }
  double stddev() const;
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double mean_ = 0.0;
  double var_ = 0.0;
  bool initialized_ = false;
};

/// Fixed-width histogram over [lo, hi) with underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t count() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  /// Quantile estimate by linear interpolation within the bucket.
  double quantile(double q) const;
  /// Normalized counts (probability mass per bucket, in-range only).
  std::vector<double> pmf() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Sliding window over the last `capacity` samples with O(1) mean/variance
/// updates and on-demand min/max/quantiles.
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t capacity);

  void add(double x);
  std::size_t size() const { return window_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return window_.size() == capacity_; }
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact quantile of the current window contents (copies + sorts).
  double quantile(double q) const;
  double front() const { return window_.front(); }
  double back() const { return window_.back(); }
  const std::deque<double>& values() const { return window_; }
  std::vector<double> to_vector() const;
  void clear();

 private:
  std::size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Batch helpers over spans (two-pass, stable).
double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);
/// Exact quantile with linear interpolation (type-7, as in numpy default).
double quantile(std::span<const double> xs, double q);
/// Median absolute deviation (scaled by 1.4826 to be sigma-consistent).
double mad(std::span<const double> xs);
/// Pearson correlation; 0 if either side is constant.
double correlation(std::span<const double> xs, std::span<const double> ys);
/// Sample autocorrelation at the given lag.
double autocorrelation(std::span<const double> xs, std::size_t lag);

}  // namespace oda
