#include "common/contention.hpp"

namespace oda {

const char* to_string(LockRankId rank) noexcept {
  switch (rank) {
    case LockRankId::kUnranked: return "unranked";
    case LockRankId::kBus: return "bus";
    case LockRankId::kHealth: return "health";
    case LockRankId::kStoreShard: return "store_shard";
    case LockRankId::kWal: return "wal";
    case LockRankId::kInterner: return "interner";
    case LockRankId::kMetrics: return "metrics";
    case LockRankId::kTrace: return "trace";
    case LockRankId::kLog: return "log";
    case LockRankId::kPool: return "pool";
    case LockRankId::kThreadWatch: return "thread_watch";
    case LockRankId::kCount: break;
  }
  return "invalid";
}

namespace contention {

namespace {

// Static storage, zero-initialized before main: recording is safe from any
// lock acquisition, including ones during static construction.
std::array<LockWaitStats, kLockRankCount> g_stats{};
std::atomic<bool> g_enabled{true};

}  // namespace

LockWaitStats& stats(LockRankId rank) noexcept {
  auto idx = static_cast<std::size_t>(rank);
  if (idx >= kLockRankCount) idx = 0;
  return g_stats[idx];
}

void set_enabled(bool enabled) noexcept {
  // relaxed: advisory arm flag; a stale read only means one extra (or one
  // missed) timed acquisition around the toggle.
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() noexcept {
  // relaxed: see set_enabled(). This is the whole disabled-path cost.
  return g_enabled.load(std::memory_order_relaxed);
}

void record_wait(LockRankId rank, double wait_seconds) noexcept {
  LockWaitStats& s = stats(rank);
  // relaxed (all): monotonic statistics counters; no reader synchronizes
  // through them (snapshots tolerate skew between fields by design).
  s.contended.fetch_add(1, std::memory_order_relaxed);
  s.wait_nanos.fetch_add(static_cast<std::uint64_t>(wait_seconds * 1e9),
                         std::memory_order_relaxed);
  std::size_t b = 0;
  while (b < kWaitBounds.size() && wait_seconds > kWaitBounds[b]) ++b;
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
}

void reset() noexcept {
  for (auto& s : g_stats) {
    // relaxed: callers quiesce writers before reset() (documented).
    s.contended.store(0, std::memory_order_relaxed);
    s.wait_nanos.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

Snapshot snapshot(LockRankId rank) noexcept {
  const LockWaitStats& s = stats(rank);
  Snapshot out;
  // relaxed (all): statistics reads; the derived count is computed from the
  // single bucket pass below so the exported histogram is self-consistent.
  out.contended = s.contended.load(std::memory_order_relaxed);
  out.wait_seconds =
      static_cast<double>(s.wait_nanos.load(std::memory_order_relaxed)) * 1e-9;
  for (std::size_t i = 0; i < out.buckets.size(); ++i) {
    out.buckets[i] = s.buckets[i].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace contention
}  // namespace oda
