#include "common/thread_watch.hpp"

#include <unistd.h>

#include <algorithm>

#if defined(__linux__)
#include <sys/syscall.h>
#endif

namespace oda {

namespace {

// Local-exec TLS in the main link unit: reading this from a signal handler
// is a plain offset load, no lazy allocation. Initialized (written) at
// registration, strictly before the thread can be signalled.
thread_local WatchedThread* t_current = nullptr;

std::uint64_t os_thread_id() {
#if defined(__linux__)
  return static_cast<std::uint64_t>(::syscall(SYS_gettid));
#else
  return 0;
#endif
}

void query_stack_bounds(const char** lo, const char** hi) {
  *lo = nullptr;
  *hi = nullptr;
#if defined(__linux__)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  std::size_t size = 0;
  if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
    *lo = static_cast<const char*>(addr);
    *hi = static_cast<const char*>(addr) + size;
  }
  pthread_attr_destroy(&attr);
#endif
}

}  // namespace

ThreadWatchRegistry& ThreadWatchRegistry::global() {
  static ThreadWatchRegistry registry;
  return registry;
}

void ThreadWatchRegistry::set_register_hook(RegisterHook hook) noexcept {
  // release: a registration that loads this hook (acquire in add()) must
  // see everything the profiler set up before installing it.
  hook_.store(hook, std::memory_order_release);
}

void ThreadWatchRegistry::for_each(
    const std::function<void(WatchedThread&)>& fn) {
  MutexLock lock(mu_);
  for (const auto& rec : threads_) fn(*rec);
}

std::size_t ThreadWatchRegistry::size() const {
  MutexLock lock(mu_);
  return threads_.size();
}

std::shared_ptr<WatchedThread> ThreadWatchRegistry::add(const char* role) {
  auto rec = std::make_shared<WatchedThread>();
  rec->handle = pthread_self();
  rec->os_tid = os_thread_id();
  rec->role = role;
  query_stack_bounds(&rec->stack_lo, &rec->stack_hi);
  {
    MutexLock lock(mu_);
    threads_.push_back(rec);
    // acquire: pairs with the release store in set_register_hook().
    if (RegisterHook hook = hook_.load(std::memory_order_acquire)) {
      hook(*rec);
    }
  }
  // Publish the TLS pointer only after the record is complete; from here on
  // a SIGPROF on this thread can observe and use it.
  t_current = rec.get();
  return rec;
}

void ThreadWatchRegistry::remove(const WatchedThread* rec) {
  t_current = nullptr;
  MutexLock lock(mu_);
  threads_.erase(std::remove_if(threads_.begin(), threads_.end(),
                                [rec](const std::shared_ptr<WatchedThread>& p) {
                                  return p.get() == rec;
                                }),
                 threads_.end());
}

WatchedThread* current_watched_thread() noexcept { return t_current; }

WatchedThreadScope::WatchedThreadScope(const char* role) {
#if ODA_PROFILING_ENABLED
  if (t_current != nullptr) return;  // nested scope: outermost wins
  rec_ = ThreadWatchRegistry::global().add(role);
#else
  (void)role;
#endif
}

WatchedThreadScope::~WatchedThreadScope() {
#if ODA_PROFILING_ENABLED
  if (rec_) ThreadWatchRegistry::global().remove(rec_.get());
#endif
}

}  // namespace oda
