#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/thread_watch.hpp"

namespace oda {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::worker_loop() {
  // Register with the thread-watch registry so the sampling profiler can
  // signal this worker (obs/profiler.hpp). One registration per worker
  // lifetime; a no-op with profiling compiled out.
  WatchedThreadScope watch("pool.worker");
  for (;;) {
    // relaxed (both): parked_workers() is an advisory gauge — a reader
    // catching the counter mid-update just sees the worker as (not yet)
    // parked, both of which are momentarily true.
    parked_.fetch_add(1, std::memory_order_relaxed);
    auto task = tasks_.pop();
    parked_.fetch_sub(1, std::memory_order_relaxed);
    if (!task) break;
    (*task)();
    task_done();
  }
}

void ThreadPool::set_task_timing_hook(std::function<void(double, double)> hook) {
  timing_hook_ = std::move(hook);
  // release: publishes the hook object to workers' acquire loads (submit).
  timing_armed_.store(static_cast<bool>(timing_hook_),
                      std::memory_order_release);
}

void ThreadPool::note_task_timing(
    std::chrono::steady_clock::time_point enqueued,
    std::chrono::steady_clock::time_point started) {
  const auto finished = std::chrono::steady_clock::now();
  timing_hook_(std::chrono::duration<double>(started - enqueued).count(),
               std::chrono::duration<double>(finished - started).count());
}

void ThreadPool::task_done() {
  // relaxed: statistics counter (see completed_count()).
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(idle_mu_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // ~8 chunks per thread by default: coarse enough that the atomic claim is
  // noise, fine enough that one slow chunk can be balanced around.
  if (grain == 0) grain = std::max<std::size_t>(1, n / (thread_count() * 8));
  const std::size_t n_chunks = (n + grain - 1) / grain;
  if (n_chunks == 1) {
    body(begin, end);
    return;
  }
  // relaxed: statistics counter (see parallel_for_calls()).
  pf_calls_.fetch_add(1, std::memory_order_relaxed);

  // Dynamic chunk claiming off one shared cursor: every participant —
  // helper workers and the calling thread alike — loops fetch_add'ing the
  // next chunk index until the range is drained. Helpers that start late
  // (queue backlog) simply claim fewer chunks; a busy or 1-thread pool
  // degrades to the caller draining everything itself, never to deadlock.
  std::atomic<std::size_t> next{0};
  const auto drain = [&] {
    for (;;) {
      // relaxed: the claim only needs atomicity (each chunk handed to one
      // participant); the futures' get()/inline-run below order all chunk
      // writes before parallel_for_chunks returns.
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= n_chunks) return;
      // relaxed: statistics counter (see parallel_for_chunks_claimed()).
      pf_chunks_.fetch_add(1, std::memory_order_relaxed);
      const std::size_t lo = begin + k * grain;
      body(lo, std::min(lo + grain, end));
    }
  };
  // References into this frame are safe: every future is get() below, so
  // helpers cannot outlive the call (submit() runs rejected tasks inline).
  const std::size_t helpers = std::min(thread_count(), n_chunks - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    futures.push_back(submit(drain));
  }
  // The caller works too instead of blocking — parallel_for costs nothing
  // extra on a saturated pool and still finishes on a pool of one.
  std::exception_ptr first_error;
  try {
    drain();
  } catch (...) {
    first_error = std::current_exception();
  }
  // Always join every helper (even after an error: they share this frame),
  // then surface the first failure like the old one-future-per-chunk path.
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::wait_idle() {
  MutexLock lock(idle_mu_);
  while (pending_.load(std::memory_order_acquire) != 0) idle_cv_.wait(idle_mu_);
}

void ThreadPool::shutdown() {
  tasks_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

}  // namespace oda
