#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/thread_watch.hpp"

namespace oda {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::worker_loop() {
  // Register with the thread-watch registry so the sampling profiler can
  // signal this worker (obs/profiler.hpp). One registration per worker
  // lifetime; a no-op with profiling compiled out.
  WatchedThreadScope watch("pool.worker");
  for (;;) {
    // relaxed (both): parked_workers() is an advisory gauge — a reader
    // catching the counter mid-update just sees the worker as (not yet)
    // parked, both of which are momentarily true.
    parked_.fetch_add(1, std::memory_order_relaxed);
    auto task = tasks_.pop();
    parked_.fetch_sub(1, std::memory_order_relaxed);
    if (!task) break;
    (*task)();
    task_done();
  }
}

void ThreadPool::set_task_timing_hook(std::function<void(double, double)> hook) {
  timing_hook_ = std::move(hook);
  // release: publishes the hook object to workers' acquire loads (submit).
  timing_armed_.store(static_cast<bool>(timing_hook_),
                      std::memory_order_release);
}

void ThreadPool::note_task_timing(
    std::chrono::steady_clock::time_point enqueued,
    std::chrono::steady_clock::time_point started) {
  const auto finished = std::chrono::steady_clock::now();
  timing_hook_(std::chrono::duration<double>(started - enqueued).count(),
               std::chrono::duration<double>(finished - started).count());
}

void ThreadPool::task_done() {
  // relaxed: statistics counter (see completed_count()).
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(idle_mu_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, thread_count() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = begin; c < end; c += chunk) {
    const std::size_t hi = std::min(c + chunk, end);
    futures.push_back(submit([c, hi, &fn] {
      for (std::size_t i = c; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::wait_idle() {
  MutexLock lock(idle_mu_);
  while (pending_.load(std::memory_order_acquire) != 0) idle_cv_.wait(idle_mu_);
}

void ThreadPool::shutdown() {
  tasks_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

}  // namespace oda
