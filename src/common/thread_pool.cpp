#include "common/thread_pool.hpp"

#include <algorithm>

namespace oda {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::worker_loop() {
  while (auto task = tasks_.pop()) {
    (*task)();
    task_done();
  }
}

void ThreadPool::task_done() {
  // relaxed: statistics counter (see completed_count()).
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(idle_mu_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, thread_count() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = begin; c < end; c += chunk) {
    const std::size_t hi = std::min(c + chunk, end);
    futures.push_back(submit([c, hi, &fn] {
      for (std::size_t i = c; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::wait_idle() {
  MutexLock lock(idle_mu_);
  while (pending_.load(std::memory_order_acquire) != 0) idle_cv_.wait(idle_mu_);
}

void ThreadPool::shutdown() {
  tasks_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

}  // namespace oda
