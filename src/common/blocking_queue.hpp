// Bounded multi-producer/multi-consumer blocking queue. Mutex + condition
// variables: simple, correct, and fast enough for control-plane traffic
// (task dispatch, alerts); the data plane uses SpscQueue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace oda {

template <typename T>
class BlockingQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) {
        ++rejected_;
        return false;
      }
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// try_push calls that returned false (full or closed) — the drop signal
  /// exported by obs::register_blocking_queue.
  std::uint64_t rejected_count() const {
    std::lock_guard lock(mu_);
    return rejected_;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain remaining items.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  std::uint64_t rejected_ = 0;  // guarded by mu_
  bool closed_ = false;
};

}  // namespace oda
