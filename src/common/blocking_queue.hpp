// Bounded multi-producer/multi-consumer blocking queue. Mutex + condition
// variables: simple, correct, and fast enough for control-plane traffic
// (task dispatch, alerts); the data plane uses SpscQueue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

#include "common/sync.hpp"

namespace oda {

template <typename T>
class BlockingQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T value) {
    {
      MutexLock lock(mu_);
      while (!closed_ && capacity_ != 0 && items_.size() >= capacity_) {
        not_full_.wait(mu_);
      }
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    {
      MutexLock lock(mu_);
      if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) {
        ++rejected_;
        return false;
      }
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// try_push calls that returned false (full or closed) — the drop signal
  /// exported by obs::register_blocking_queue.
  std::uint64_t rejected_count() const {
    MutexLock lock(mu_);
    return rejected_;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::optional<T> value;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) not_empty_.wait(mu_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain remaining items.
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_{LockRankId::kPool};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ ODA_GUARDED_BY(mu_);
  std::size_t capacity_;
  std::uint64_t rejected_ ODA_GUARDED_BY(mu_) = 0;
  bool closed_ ODA_GUARDED_BY(mu_) = false;
};

}  // namespace oda
