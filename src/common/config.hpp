// Flat key-value configuration with typed accessors. Parsed from
// "key = value" text (comments with '#') or set programmatically; every
// simulator and analytics component takes its parameters through this so
// experiments are scriptable from one place.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace oda {

class Config {
 public:
  Config() = default;

  /// Parses "key = value" lines; '#' starts a comment; blank lines ignored.
  static Config from_text(const std::string& text);

  void set(const std::string& key, std::string value);
  void set(const std::string& key, double value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, bool value);

  bool contains(const std::string& key) const;
  std::vector<std::string> keys() const;

  /// Typed getters: the _or variants return the fallback when missing; the
  /// required variants throw ConfigError when missing or malformed.
  std::string get_string(const std::string& key) const;
  std::string get_string_or(const std::string& key, std::string fallback) const;
  double get_double(const std::string& key) const;
  double get_double_or(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  /// Returns a sub-config of keys under "prefix." with the prefix stripped.
  Config scoped(const std::string& prefix) const;

  /// Merges other into this; other's values win on conflict.
  void merge(const Config& other);

  std::string to_text() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;
  std::map<std::string, std::string> values_;
};

}  // namespace oda
