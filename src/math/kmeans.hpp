// k-means clustering with k-means++ seeding. Used for datacenter crisis
// fingerprinting (cluster known incident signatures, match new ones) and
// workload phase discovery.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace oda::math {

struct KMeansResult {
  std::vector<std::vector<double>> centroids;
  std::vector<std::size_t> labels;   // cluster per input row
  double inertia = 0.0;              // sum of squared distances to centroids
  std::size_t iterations = 0;

  /// Nearest centroid for a new sample.
  std::size_t predict(std::span<const double> sample) const;
  /// Distance from the sample to its nearest centroid.
  double distance_to_nearest(std::span<const double> sample) const;
};

KMeansResult kmeans(const std::vector<std::vector<double>>& data, std::size_t k,
                    Rng& rng, std::size_t max_iterations = 100,
                    double tol = 1e-6);

/// Picks k in [1, max_k] by the largest second difference ("elbow") of
/// inertia; small and deterministic given the rng seed.
std::size_t select_k_elbow(const std::vector<std::vector<double>>& data,
                           std::size_t max_k, Rng& rng);

}  // namespace oda::math
