#include "math/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace oda::math {

double euclidean_distance(std::span<const double> a, std::span<const double> b) {
  ODA_REQUIRE(a.size() == b.size(), "distance dim mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double manhattan_distance(std::span<const double> a, std::span<const double> b) {
  ODA_REQUIRE(a.size() == b.size(), "distance dim mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

double chebyshev_distance(std::span<const double> a, std::span<const double> b) {
  ODA_REQUIRE(a.size() == b.size(), "distance dim mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = std::max(acc, std::abs(a[i] - b[i]));
  }
  return acc;
}

double cosine_distance(std::span<const double> a, std::span<const double> b) {
  ODA_REQUIRE(a.size() == b.size(), "distance dim mismatch");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 1.0;
  return 1.0 - dot / std::sqrt(na * nb);
}

double dtw_distance(std::span<const double> a, std::span<const double> b,
                    std::size_t band) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : std::numeric_limits<double>::infinity();

  const double inf = std::numeric_limits<double>::infinity();
  // Two-row DP.
  std::vector<double> prev(m + 1, inf), curr(m + 1, inf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), inf);
    // Sakoe–Chiba band around the diagonal, scaled to unequal lengths.
    const double center = static_cast<double>(i) * static_cast<double>(m) /
                          static_cast<double>(n);
    std::size_t j_lo = 1, j_hi = m;
    if (band > 0) {
      const double lo = center - static_cast<double>(band);
      const double hi = center + static_cast<double>(band);
      j_lo = lo > 1.0 ? static_cast<std::size_t>(lo) : 1;
      j_hi = hi < static_cast<double>(m) ? static_cast<std::size_t>(hi) : m;
      if (j_lo > j_hi) j_lo = j_hi;
    }
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);
      const double best = std::min({prev[j], curr[j - 1], prev[j - 1]});
      if (best < inf) curr[j] = cost + best;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

}  // namespace oda::math
