#include "math/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "math/regression.hpp"

namespace oda::math {

std::vector<double> difference(std::span<const double> xs) {
  if (xs.size() < 2) return {};
  std::vector<double> out(xs.size() - 1);
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) out[i] = xs[i + 1] - xs[i];
  return out;
}

std::vector<double> seasonal_difference(std::span<const double> xs,
                                        std::size_t lag) {
  ODA_REQUIRE(lag > 0, "seasonal lag must be positive");
  if (xs.size() <= lag) return {};
  std::vector<double> out(xs.size() - lag);
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    out[i] = xs[i + lag] - xs[i];
  }
  return out;
}

std::vector<double> detrend(std::span<const double> xs) {
  const TrendLine t = fit_trend(xs);
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = xs[i] - t.at(static_cast<double>(i));
  }
  return out;
}

std::vector<double> z_normalize(std::span<const double> xs) {
  const double m = oda::mean(xs);
  const double s = oda::stddev(xs);
  std::vector<double> out(xs.size(), 0.0);
  if (s <= 0.0) return out;
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - m) / s;
  return out;
}

std::vector<double> moving_average(std::span<const double> xs, std::size_t window) {
  ODA_REQUIRE(window > 0, "window must be positive");
  const std::size_t n = xs.size();
  std::vector<double> out(n);
  const std::size_t half = window / 2;
  double sum = 0.0;
  std::size_t lo = 0, hi = 0;  // current [lo, hi) window
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t want_lo = i > half ? i - half : 0;
    const std::size_t want_hi = std::min(n, i + window - half);
    while (hi < want_hi) sum += xs[hi++];
    while (lo < want_lo) sum -= xs[lo++];
    out[i] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

std::vector<double> trailing_average(std::span<const double> xs,
                                     std::size_t window) {
  ODA_REQUIRE(window > 0, "window must be positive");
  std::vector<double> out(xs.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum += xs[i];
    if (i >= window) sum -= xs[i - window];
    out[i] = sum / static_cast<double>(std::min(i + 1, window));
  }
  return out;
}

std::vector<double> acf(std::span<const double> xs, std::size_t max_lag) {
  std::vector<double> out(max_lag + 1, 0.0);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    out[lag] = oda::autocorrelation(xs, lag);
  }
  return out;
}

std::size_t detect_period(std::span<const double> xs, std::size_t max_period,
                          double min_correlation) {
  if (xs.size() < 4 || max_period < 2) return 0;
  max_period = std::min(max_period, xs.size() / 2);
  const auto correlations = acf(xs, max_period);
  // Find local maxima of the ACF above the threshold; return the first
  // (shortest period), which is the fundamental rather than a harmonic.
  std::size_t best = 0;
  double best_val = min_correlation;
  for (std::size_t lag = 2; lag < correlations.size(); ++lag) {
    const double c = correlations[lag];
    const bool local_max =
        c >= correlations[lag - 1] &&
        (lag + 1 >= correlations.size() || c >= correlations[lag + 1]);
    if (local_max && c > best_val) {
      best = lag;
      best_val = c;
      // First strong local max is the fundamental period.
      break;
    }
  }
  return best;
}

Decomposition decompose_additive(std::span<const double> xs, std::size_t period) {
  ODA_REQUIRE(period >= 2, "decomposition period must be >= 2");
  ODA_REQUIRE(xs.size() >= 2 * period, "need at least two full periods");
  const std::size_t n = xs.size();
  Decomposition d;
  d.trend = moving_average(xs, period);

  // Seasonal component: mean of detrended values per phase, centered.
  std::vector<double> phase_sum(period, 0.0);
  std::vector<std::size_t> phase_count(period, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double detr = xs[i] - d.trend[i];
    phase_sum[i % period] += detr;
    ++phase_count[i % period];
  }
  std::vector<double> pattern(period, 0.0);
  double pattern_mean = 0.0;
  for (std::size_t p = 0; p < period; ++p) {
    pattern[p] = phase_count[p] ? phase_sum[p] / static_cast<double>(phase_count[p]) : 0.0;
    pattern_mean += pattern[p];
  }
  pattern_mean /= static_cast<double>(period);
  for (double& p : pattern) p -= pattern_mean;

  d.seasonal.resize(n);
  d.residual.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.seasonal[i] = pattern[i % period];
    d.residual[i] = xs[i] - d.trend[i] - d.seasonal[i];
  }
  return d;
}

std::vector<double> paa(std::span<const double> xs, std::size_t segments) {
  ODA_REQUIRE(segments > 0, "paa needs at least one segment");
  const std::size_t n = xs.size();
  std::vector<double> out(segments, 0.0);
  if (n == 0) return out;
  for (std::size_t s = 0; s < segments; ++s) {
    const std::size_t lo = s * n / segments;
    const std::size_t hi = std::max(lo + 1, (s + 1) * n / segments);
    double sum = 0.0;
    for (std::size_t i = lo; i < hi && i < n; ++i) sum += xs[i];
    out[s] = sum / static_cast<double>(std::min(hi, n) - lo);
  }
  return out;
}

std::size_t longest_run_above(std::span<const double> xs, double threshold) {
  std::size_t best = 0, current = 0;
  for (double x : xs) {
    current = x > threshold ? current + 1 : 0;
    best = std::max(best, current);
  }
  return best;
}

}  // namespace oda::math
