#include "math/entropy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oda::math {

double shannon_entropy(std::span<const std::size_t> counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double binned_entropy(std::span<const double> xs, std::size_t bins) {
  ODA_REQUIRE(bins > 0, "binned_entropy needs bins");
  if (xs.empty()) return 0.0;
  const auto [lo_it, hi_it] = std::minmax_element(xs.begin(), xs.end());
  const double lo = *lo_it, hi = *hi_it;
  if (hi <= lo) return 0.0;  // constant signal
  std::vector<std::size_t> counts(bins, 0);
  for (double x : xs) {
    auto idx = static_cast<std::size_t>((x - lo) / (hi - lo) * static_cast<double>(bins));
    if (idx >= bins) idx = bins - 1;
    ++counts[idx];
  }
  return shannon_entropy(counts);
}

double normalized_entropy(std::span<const std::size_t> counts) {
  std::size_t nonzero = 0;
  for (std::size_t c : counts) {
    if (c > 0) ++nonzero;
  }
  if (nonzero <= 1) return 0.0;
  return shannon_entropy(counts) / std::log2(static_cast<double>(nonzero));
}

void TransitionEntropy::observe(const std::string& state) {
  if (has_last_) {
    ++counts_[{last_state_, state}];
    ++total_;
  }
  last_state_ = state;
  has_last_ = true;
}

double TransitionEntropy::entropy() const {
  if (total_ == 0) return 0.0;
  double h = 0.0;
  for (const auto& [key, c] : counts_) {
    const double p = static_cast<double>(c) / static_cast<double>(total_);
    h -= p * std::log2(p);
  }
  return h;
}

void TransitionEntropy::reset() {
  counts_.clear();
  last_state_.clear();
  has_last_ = false;
  total_ = 0;
}

}  // namespace oda::math
