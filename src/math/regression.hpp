// Linear models: ordinary least squares (QR-based), ridge regression,
// polynomial fitting, and the robust Theil–Sen slope used by drift detectors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "math/matrix.hpp"

namespace oda::math {

struct LinearModel {
  std::vector<double> coefficients;  // one per feature
  double intercept = 0.0;
  double r_squared = 0.0;

  double predict(std::span<const double> features) const;
};

/// OLS fit of y ~ X (rows = observations). Throws on rank deficiency.
LinearModel fit_ols(const Matrix& x, std::span<const double> y);

/// Ridge regression with L2 penalty lambda >= 0 (intercept not penalized).
LinearModel fit_ridge(const Matrix& x, std::span<const double> y, double lambda);

/// Simple regression y ~ a + b t over t = 0..n-1. Returns {intercept, slope}.
struct TrendLine {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;

  double at(double t) const { return intercept + slope * t; }
};
TrendLine fit_trend(std::span<const double> y);

/// Polynomial fit of the given degree over t = 0..n-1; coefficients are in
/// ascending power order.
std::vector<double> fit_polynomial(std::span<const double> y, std::size_t degree);
double eval_polynomial(std::span<const double> coeffs, double t);

/// Theil–Sen estimator: the median of pairwise slopes. Robust against up to
/// ~29% outliers; used for memory-leak and sensor-drift detection. For long
/// series a random subsample of pairs is used (deterministic).
TrendLine fit_theil_sen(std::span<const double> y, std::size_t max_pairs = 10000);

}  // namespace oda::math
