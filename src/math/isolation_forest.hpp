// Isolation forest (Liu, Ting & Zhou 2008): anomaly scoring by how quickly a
// sample is isolated under random axis-aligned splits. The node-level
// hardware anomaly detector's strongest unsupervised scorer.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace oda::math {

class IsolationForest {
 public:
  struct Params {
    std::size_t n_trees = 100;
    std::size_t subsample = 256;  // per-tree sample size
  };

  /// Fits on rows-as-observations data.
  static IsolationForest fit(const std::vector<std::vector<double>>& data,
                             const Params& params, Rng& rng);

  /// Anomaly score in (0, 1): >0.6 is suspicious, ~0.5 is average.
  double score(std::span<const double> sample) const;
  std::size_t tree_count() const { return trees_.size(); }

 private:
  struct Node {
    int feature = -1;          // -1 marks a leaf
    double threshold = 0.0;
    std::size_t size = 0;      // leaf: samples that landed here
    std::unique_ptr<Node> left, right;
  };

  static std::unique_ptr<Node> build_tree(std::vector<std::size_t>& idx,
                                          const std::vector<std::vector<double>>& data,
                                          std::size_t depth, std::size_t max_depth,
                                          Rng& rng);
  static double path_length(const Node& node, std::span<const double> sample,
                            std::size_t depth);
  /// Average unsuccessful-search path length of a BST with n nodes.
  static double c_factor(std::size_t n);

  std::vector<std::unique_ptr<Node>> trees_;
  double expected_path_ = 1.0;
};

}  // namespace oda::math
