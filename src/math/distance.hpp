// Distance measures over feature vectors and time series, including dynamic
// time warping for fingerprint matching of variable-length profiles.
#pragma once

#include <cstddef>
#include <span>

namespace oda::math {

double euclidean_distance(std::span<const double> a, std::span<const double> b);
double manhattan_distance(std::span<const double> a, std::span<const double> b);
double chebyshev_distance(std::span<const double> a, std::span<const double> b);
/// 1 - cosine similarity; 1.0 when either vector is zero.
double cosine_distance(std::span<const double> a, std::span<const double> b);

/// Dynamic time warping with an optional Sakoe–Chiba band (0 = unconstrained).
/// Inputs may differ in length. O(len(a)*band) time.
double dtw_distance(std::span<const double> a, std::span<const double> b,
                    std::size_t band = 0);

}  // namespace oda::math
