#include "math/smoothing.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace oda::math {

SimpleExpSmoother::SimpleExpSmoother(double alpha) : alpha_(alpha) {
  ODA_REQUIRE(alpha > 0.0 && alpha <= 1.0, "SES alpha must be in (0,1]");
}

void SimpleExpSmoother::add(double x) {
  if (!initialized_) {
    level_ = x;
    initialized_ = true;
    return;
  }
  level_ += alpha_ * (x - level_);
}

void SimpleExpSmoother::fit(std::span<const double> xs) {
  for (double x : xs) add(x);
}

HoltSmoother::HoltSmoother(double alpha, double beta) : alpha_(alpha), beta_(beta) {
  ODA_REQUIRE(alpha > 0.0 && alpha <= 1.0, "Holt alpha must be in (0,1]");
  ODA_REQUIRE(beta > 0.0 && beta <= 1.0, "Holt beta must be in (0,1]");
}

void HoltSmoother::add(double x) {
  if (n_ == 0) {
    level_ = x;
    last_ = x;
    ++n_;
    return;
  }
  if (n_ == 1) {
    trend_ = x - last_;
    level_ = x;
    ++n_;
    return;
  }
  const double prev_level = level_;
  level_ = alpha_ * x + (1.0 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  ++n_;
}

double HoltSmoother::forecast(std::size_t h) const {
  return level_ + static_cast<double>(h) * trend_;
}

void HoltSmoother::fit(std::span<const double> xs) {
  for (double x : xs) add(x);
}

HoltWinters::HoltWinters(double alpha, double beta, double gamma,
                         std::size_t period)
    : alpha_(alpha), beta_(beta), gamma_(gamma), period_(period) {
  ODA_REQUIRE(alpha > 0.0 && alpha <= 1.0, "HW alpha must be in (0,1]");
  ODA_REQUIRE(beta >= 0.0 && beta <= 1.0, "HW beta must be in [0,1]");
  ODA_REQUIRE(gamma >= 0.0 && gamma <= 1.0, "HW gamma must be in [0,1]");
  ODA_REQUIRE(period >= 2, "HW period must be >= 2");
}

void HoltWinters::initialize_seasonal() {
  // Classical init from the first two seasons: level = mean of season 1,
  // trend = mean per-step change between seasons, seasonal = deviation of the
  // first two seasons from their season means.
  const std::size_t p = period_;
  double s1 = 0.0, s2 = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    s1 += warmup_[i];
    s2 += warmup_[p + i];
  }
  s1 /= static_cast<double>(p);
  s2 /= static_cast<double>(p);
  level_ = s1;
  trend_ = (s2 - s1) / static_cast<double>(p);
  seasonal_.assign(p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    seasonal_[i] = ((warmup_[i] - s1) + (warmup_[p + i] - s2)) / 2.0;
  }
  // Re-run the warmup samples through the update equations so the state
  // reflects the full history.
  seasonal_ready_ = true;
  // Advance level to the end of the warmup window.
  level_ = s2 + trend_ * (static_cast<double>(p) / 2.0);
  t_ = 0;
  warmup_.clear();
}

void HoltWinters::add(double x) {
  if (!seasonal_ready_) {
    warmup_.push_back(x);
    if (warmup_.size() >= 2 * period_) initialize_seasonal();
    return;
  }
  const std::size_t idx = t_ % period_;
  const double prev_level = level_;
  level_ = alpha_ * (x - seasonal_[idx]) + (1.0 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  seasonal_[idx] = gamma_ * (x - level_) + (1.0 - gamma_) * seasonal_[idx];
  ++t_;
}

double HoltWinters::forecast(std::size_t h) const {
  if (!seasonal_ready_) {
    // Fallback: last-value behaviour during warmup.
    return warmup_.empty() ? 0.0 : warmup_.back();
  }
  const std::size_t idx = (t_ + h - 1) % period_;
  return level_ + static_cast<double>(h) * trend_ + seasonal_[idx];
}

std::vector<double> HoltWinters::forecast_path(std::size_t horizon) const {
  std::vector<double> out;
  out.reserve(horizon);
  for (std::size_t h = 1; h <= horizon; ++h) out.push_back(forecast(h));
  return out;
}

void HoltWinters::fit(std::span<const double> xs) {
  for (double x : xs) add(x);
}

}  // namespace oda::math
