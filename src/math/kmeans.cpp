#include "math/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace oda::math {

namespace {

double sq_dist(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

std::size_t KMeansResult::predict(std::span<const double> sample) const {
  ODA_REQUIRE(!centroids.empty(), "predict on empty clustering");
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double d = sq_dist(sample, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

double KMeansResult::distance_to_nearest(std::span<const double> sample) const {
  return std::sqrt(sq_dist(sample, centroids[predict(sample)]));
}

KMeansResult kmeans(const std::vector<std::vector<double>>& data, std::size_t k,
                    Rng& rng, std::size_t max_iterations, double tol) {
  ODA_REQUIRE(!data.empty(), "kmeans on empty data");
  ODA_REQUIRE(k >= 1 && k <= data.size(), "kmeans k out of range");
  const std::size_t n = data.size();
  const std::size_t dim = data[0].size();
  for (const auto& row : data) {
    ODA_REQUIRE(row.size() == dim, "kmeans ragged data");
  }

  KMeansResult result;
  // k-means++ seeding.
  result.centroids.push_back(
      data[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))]);
  std::vector<double> min_d(n, std::numeric_limits<double>::infinity());
  while (result.centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_d[i] = std::min(min_d[i], sq_dist(data[i], result.centroids.back()));
      total += min_d[i];
    }
    if (total <= 0.0) {
      // All points coincide with chosen centroids: duplicate one.
      result.centroids.push_back(data[0]);
      continue;
    }
    double r = rng.uniform(0.0, total);
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      r -= min_d[i];
      if (r <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(data[chosen]);
  }

  result.labels.assign(n, 0);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++result.iterations;
    // Assign.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t label = result.predict(data[i]);
      if (label != result.labels[i]) {
        result.labels[i] = label;
        changed = true;
      }
    }
    // Update.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      auto& s = sums[result.labels[i]];
      for (std::size_t d = 0; d < dim; ++d) s[d] += data[i][d];
      ++counts[result.labels[i]];
    }
    double shift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the farthest point.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = sq_dist(data[i], result.centroids[result.labels[i]]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        result.centroids[c] = data[far];
        changed = true;
        continue;
      }
      std::vector<double> next(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        next[d] = sums[c][d] / static_cast<double>(counts[c]);
      }
      shift += sq_dist(next, result.centroids[c]);
      result.centroids[c] = std::move(next);
    }
    if (!changed || shift < tol) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia += sq_dist(data[i], result.centroids[result.labels[i]]);
  }
  return result;
}

std::size_t select_k_elbow(const std::vector<std::vector<double>>& data,
                           std::size_t max_k, Rng& rng) {
  max_k = std::min(max_k, data.size());
  if (max_k <= 1) return 1;
  std::vector<double> inertias;
  inertias.reserve(max_k);
  for (std::size_t k = 1; k <= max_k; ++k) {
    Rng local = rng.split(k);
    inertias.push_back(kmeans(data, k, local).inertia);
  }
  // Largest second difference marks the elbow.
  std::size_t best_k = 1;
  double best_curvature = -std::numeric_limits<double>::infinity();
  for (std::size_t k = 2; k < max_k; ++k) {
    const double curvature =
        inertias[k - 2] - 2.0 * inertias[k - 1] + inertias[k];
    if (curvature > best_curvature) {
      best_curvature = curvature;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace oda::math
