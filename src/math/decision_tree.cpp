#include "math/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace oda::math {

double DecisionTree::gini(const std::vector<std::size_t>& counts,
                          std::size_t total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    impurity -= p * p;
  }
  return impurity;
}

std::unique_ptr<DecisionTree::Node> DecisionTree::build(
    const std::vector<LabeledSample>& data, std::vector<std::size_t>& idx,
    std::size_t n_classes, const Params& params, std::size_t depth, Rng& rng) {
  auto node = std::make_unique<Node>();

  std::vector<std::size_t> counts(n_classes, 0);
  for (std::size_t i : idx) ++counts[data[i].label];
  const double parent_gini = gini(counts, idx.size());

  const auto make_leaf = [&] {
    node->class_probs.assign(n_classes, 0.0);
    for (std::size_t c = 0; c < n_classes; ++c) {
      node->class_probs[c] =
          static_cast<double>(counts[c]) / static_cast<double>(idx.size());
    }
    return std::move(node);
  };

  if (depth >= params.max_depth || idx.size() < params.min_samples_split ||
      parent_gini <= 1e-12) {
    return make_leaf();
  }

  const std::size_t dim = data[0].features.size();
  std::vector<std::size_t> features(dim);
  std::iota(features.begin(), features.end(), 0);
  std::size_t n_try = params.max_features == 0
                          ? dim
                          : std::min(params.max_features, dim);
  if (n_try < dim) rng.shuffle(features);

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = parent_gini;  // must improve on the parent

  std::vector<double> values;
  for (std::size_t fi = 0; fi < n_try; ++fi) {
    const std::size_t f = features[fi];
    values.clear();
    for (std::size_t i : idx) values.push_back(data[i].features[f]);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) continue;

    // Candidate thresholds: midpoints, capped at 32 evenly spaced to keep
    // fitting fast on large leaves.
    const std::size_t stride = std::max<std::size_t>(1, values.size() / 33);
    for (std::size_t v = 0; v + 1 < values.size(); v += stride) {
      const double threshold = (values[v] + values[v + 1]) / 2.0;
      std::vector<std::size_t> lc(n_classes, 0), rc(n_classes, 0);
      std::size_t ln = 0, rn = 0;
      for (std::size_t i : idx) {
        if (data[i].features[f] < threshold) {
          ++lc[data[i].label];
          ++ln;
        } else {
          ++rc[data[i].label];
          ++rn;
        }
      }
      if (ln == 0 || rn == 0) continue;
      const double weighted =
          (static_cast<double>(ln) * gini(lc, ln) +
           static_cast<double>(rn) * gini(rc, rn)) /
          static_cast<double>(idx.size());
      if (weighted < best_score - 1e-12) {
        best_score = weighted;
        best_feature = static_cast<int>(f);
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : idx) {
    (data[i].features[static_cast<std::size_t>(best_feature)] < best_threshold
         ? left_idx
         : right_idx)
        .push_back(i);
  }
  node->feature = best_feature;
  node->threshold = best_threshold;
  node->left = build(data, left_idx, n_classes, params, depth + 1, rng);
  node->right = build(data, right_idx, n_classes, params, depth + 1, rng);
  return node;
}

DecisionTree DecisionTree::fit(const std::vector<LabeledSample>& data,
                               std::size_t n_classes, const Params& params,
                               Rng& rng) {
  ODA_REQUIRE(!data.empty(), "decision tree on empty data");
  ODA_REQUIRE(n_classes >= 2, "decision tree needs >= 2 classes");
  const std::size_t dim = data[0].features.size();
  for (const auto& s : data) {
    ODA_REQUIRE(s.features.size() == dim, "decision tree ragged data");
    ODA_REQUIRE(s.label < n_classes, "label out of range");
  }
  DecisionTree tree;
  tree.n_classes_ = n_classes;
  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  tree.root_ = build(data, idx, n_classes, params, 0, rng);
  return tree;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> features) const {
  ODA_REQUIRE(root_ != nullptr, "predict on unfitted tree");
  const Node* node = root_.get();
  while (node->feature >= 0) {
    node = features[static_cast<std::size_t>(node->feature)] < node->threshold
               ? node->left.get()
               : node->right.get();
  }
  return node->class_probs;
}

std::size_t DecisionTree::predict(std::span<const double> features) const {
  const auto probs = predict_proba(features);
  return static_cast<std::size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

RandomForest RandomForest::fit(const std::vector<LabeledSample>& data,
                               std::size_t n_classes, const Params& params,
                               Rng& rng) {
  ODA_REQUIRE(!data.empty(), "random forest on empty data");
  RandomForest forest;
  forest.n_classes_ = n_classes;
  const std::size_t n = data.size();
  const std::size_t dim = data[0].features.size();

  DecisionTree::Params tree_params = params.tree;
  if (tree_params.max_features == 0) {
    tree_params.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(dim))));
  }

  for (std::size_t t = 0; t < params.n_trees; ++t) {
    Rng tree_rng = rng.split(t + 1);
    // Bootstrap sample.
    std::vector<LabeledSample> boot;
    boot.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      boot.push_back(data[static_cast<std::size_t>(
          tree_rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))]);
    }
    forest.trees_.push_back(DecisionTree::fit(boot, n_classes, tree_params, tree_rng));
  }
  return forest;
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> features) const {
  ODA_REQUIRE(!trees_.empty(), "predict on unfitted forest");
  std::vector<double> probs(n_classes_, 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba(features);
    for (std::size_t c = 0; c < n_classes_; ++c) probs[c] += p[c];
  }
  for (double& p : probs) p /= static_cast<double>(trees_.size());
  return probs;
}

std::size_t RandomForest::predict(std::span<const double> features) const {
  const auto probs = predict_proba(features);
  return static_cast<std::size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace oda::math
