// Information-theoretic descriptors. The System Information Entropy (SIE)
// metric of Hui et al. [14] characterizes how "surprising" the distribution
// of system state transitions is; we provide Shannon entropy over discrete
// states plus a binned variant for continuous telemetry.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace oda::math {

/// Shannon entropy (bits) of a discrete distribution given by counts.
double shannon_entropy(std::span<const std::size_t> counts);

/// Entropy (bits) of a continuous sample using equal-width binning.
double binned_entropy(std::span<const double> xs, std::size_t bins);

/// Normalized entropy in [0,1]: entropy / log2(#nonzero states).
double normalized_entropy(std::span<const std::size_t> counts);

/// Streaming state-transition entropy: feed a sequence of discrete state
/// labels; entropy is computed over observed transition frequencies. This is
/// the core of the SIE system-status indicator.
class TransitionEntropy {
 public:
  void observe(const std::string& state);
  /// Entropy (bits) of the transition distribution seen so far.
  double entropy() const;
  std::size_t transition_count() const { return total_; }
  std::size_t distinct_transitions() const { return counts_.size(); }
  void reset();

 private:
  std::map<std::pair<std::string, std::string>, std::size_t> counts_;
  std::string last_state_;
  bool has_last_ = false;
  std::size_t total_ = 0;
};

}  // namespace oda::math
