// Autoregressive AR(p) models fit by Yule–Walker (Levinson–Durbin recursion)
// or conditional least squares. The predictive pillar's sensor forecasters
// build on these.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace oda::math {

class ArModel {
 public:
  /// Yule–Walker fit via Levinson–Durbin. Stable by construction.
  static ArModel fit_yule_walker(std::span<const double> xs, std::size_t order);
  /// Conditional least-squares fit (QR on the lag matrix). Can be more
  /// accurate for short series but is not guaranteed stationary.
  static ArModel fit_least_squares(std::span<const double> xs, std::size_t order);

  std::size_t order() const { return phi_.size(); }
  const std::vector<double>& coefficients() const { return phi_; }
  double mean() const { return mean_; }
  /// Innovation (one-step residual) variance.
  double noise_variance() const { return noise_var_; }

  /// One-step-ahead prediction from the most recent `order()` observations
  /// (history.back() is the latest value).
  double predict_next(std::span<const double> history) const;

  /// Iterated h-step forecast from the given history.
  std::vector<double> forecast(std::span<const double> history,
                               std::size_t horizon) const;

  /// In-sample one-step residuals (useful for anomaly scoring).
  std::vector<double> residuals(std::span<const double> xs) const;

 private:
  std::vector<double> phi_;
  double mean_ = 0.0;
  double noise_var_ = 0.0;
};

/// Orders 1..max_order scored by AIC on one-step residuals; returns the best.
std::size_t select_ar_order(std::span<const double> xs, std::size_t max_order);

}  // namespace oda::math
