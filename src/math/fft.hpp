// Fast Fourier transform: iterative radix-2 Cooley–Tukey for power-of-two
// sizes and Bluestein's chirp-z algorithm for arbitrary sizes. Powers the
// spectral power-forecaster (the LLNL beyond-the-datacenter use case) and
// the OS-noise analyzer.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace oda::math {

using Complex = std::complex<double>;

/// In-place radix-2 FFT; size must be a power of two.
void fft_radix2(std::vector<Complex>& data, bool inverse);

/// FFT of arbitrary size (radix-2 when possible, Bluestein otherwise).
std::vector<Complex> fft(std::vector<Complex> data);
std::vector<Complex> ifft(std::vector<Complex> data);

/// Forward FFT of a real signal; returns the full complex spectrum.
std::vector<Complex> fft_real(std::span<const double> signal);

/// One-sided power spectrum |X_k|²/n for k = 0..n/2.
std::vector<double> power_spectrum(std::span<const double> signal);

/// Frequency (cycles per sample) of one-sided bin k for an n-point transform.
double bin_frequency(std::size_t k, std::size_t n);

/// A dominant spectral component extracted from a real signal.
struct SpectralComponent {
  double frequency = 0.0;  // cycles per sample
  double amplitude = 0.0;
  double phase = 0.0;      // radians
};

/// The strongest `count` nonzero-frequency components (descending amplitude).
std::vector<SpectralComponent> dominant_components(std::span<const double> signal,
                                                   std::size_t count);

/// Reconstructs mean + sum of the given components at sample positions
/// [0, length); extends beyond the input when length > signal size, which is
/// how the spectral forecaster extrapolates.
std::vector<double> synthesize(double mean,
                               std::span<const SpectralComponent> components,
                               std::size_t length);

/// Fast cyclic autocorrelation via FFT (biased, normalized by lag-0).
std::vector<double> fft_autocorrelation(std::span<const double> signal,
                                        std::size_t max_lag);

}  // namespace oda::math
