#include "math/regression.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace oda::math {

double LinearModel::predict(std::span<const double> features) const {
  ODA_REQUIRE(features.size() == coefficients.size(),
              "feature count mismatch in LinearModel::predict");
  double acc = intercept;
  for (std::size_t i = 0; i < features.size(); ++i) {
    acc += coefficients[i] * features[i];
  }
  return acc;
}

namespace {

double compute_r_squared(const Matrix& x, std::span<const double> y,
                         const LinearModel& model) {
  const double ym = oda::mean(y);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double pred = model.predict(x.row(i));
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ym) * (y[i] - ym);
  }
  if (ss_tot <= 0.0) return ss_res <= 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace

LinearModel fit_ols(const Matrix& x, std::span<const double> y) {
  ODA_REQUIRE(x.rows() == y.size(), "OLS row/target mismatch");
  ODA_REQUIRE(x.rows() > x.cols(), "OLS needs more observations than features");
  // Augment with an intercept column.
  Matrix aug(x.rows(), x.cols() + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    aug(r, 0) = 1.0;
    for (std::size_t c = 0; c < x.cols(); ++c) aug(r, c + 1) = x(r, c);
  }
  const auto qr = qr_decompose(aug);
  const auto beta = qr.solve(y);

  LinearModel model;
  model.intercept = beta[0];
  model.coefficients.assign(beta.begin() + 1, beta.end());
  model.r_squared = compute_r_squared(x, y, model);
  return model;
}

LinearModel fit_ridge(const Matrix& x, std::span<const double> y, double lambda) {
  ODA_REQUIRE(x.rows() == y.size(), "ridge row/target mismatch");
  ODA_REQUIRE(lambda >= 0.0, "ridge lambda must be non-negative");
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();

  // Center so the intercept drops out of the penalized system.
  std::vector<double> xm(p, 0.0);
  for (std::size_t c = 0; c < p; ++c) {
    for (std::size_t r = 0; r < n; ++r) xm[c] += x(r, c);
    xm[c] /= static_cast<double>(n);
  }
  const double ym = oda::mean(y);

  // Normal equations on centered data: (XcᵀXc + lambda I) beta = Xcᵀ yc.
  Matrix gram(p, p);
  std::vector<double> rhs(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < p; ++i) {
      const double xi = x(r, i) - xm[i];
      rhs[i] += xi * (y[r] - ym);
      for (std::size_t j = i; j < p; ++j) {
        gram(i, j) += xi * (x(r, j) - xm[j]);
      }
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    gram(i, i) += lambda;
    for (std::size_t j = 0; j < i; ++j) gram(i, j) = gram(j, i);
  }

  LinearModel model;
  model.coefficients = lambda > 0.0 || n > p ? cholesky_solve(gram, rhs)
                                             : lu_solve(gram, rhs);
  model.intercept = ym;
  for (std::size_t i = 0; i < p; ++i) {
    model.intercept -= model.coefficients[i] * xm[i];
  }
  model.r_squared = compute_r_squared(x, y, model);
  return model;
}

TrendLine fit_trend(std::span<const double> y) {
  const std::size_t n = y.size();
  TrendLine t;
  if (n < 2) {
    t.intercept = n == 1 ? y[0] : 0.0;
    return t;
  }
  // Closed form over t = 0..n-1.
  const double nt = static_cast<double>(n);
  const double tm = (nt - 1.0) / 2.0;
  const double ym = oda::mean(y);
  double stt = 0.0, sty = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dt = static_cast<double>(i) - tm;
    const double dy = y[i] - ym;
    stt += dt * dt;
    sty += dt * dy;
    syy += dy * dy;
  }
  t.slope = stt > 0.0 ? sty / stt : 0.0;
  t.intercept = ym - t.slope * tm;
  t.r_squared = (stt > 0.0 && syy > 0.0) ? (sty * sty) / (stt * syy) : 0.0;
  return t;
}

std::vector<double> fit_polynomial(std::span<const double> y, std::size_t degree) {
  const std::size_t n = y.size();
  ODA_REQUIRE(n > degree, "polynomial fit needs more points than degree");
  Matrix x(n, degree);  // powers 1..degree; intercept handled by fit_ols
  for (std::size_t r = 0; r < n; ++r) {
    double p = 1.0;
    for (std::size_t d = 0; d < degree; ++d) {
      p *= static_cast<double>(r);
      x(r, d) = p;
    }
  }
  if (degree == 0) {
    return {oda::mean(y)};
  }
  const auto model = fit_ols(x, y);
  std::vector<double> coeffs;
  coeffs.reserve(degree + 1);
  coeffs.push_back(model.intercept);
  coeffs.insert(coeffs.end(), model.coefficients.begin(), model.coefficients.end());
  return coeffs;
}

double eval_polynomial(std::span<const double> coeffs, double t) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * t + coeffs[i];
  return acc;
}

TrendLine fit_theil_sen(std::span<const double> y, std::size_t max_pairs) {
  const std::size_t n = y.size();
  TrendLine t;
  if (n < 2) {
    t.intercept = n == 1 ? y[0] : 0.0;
    return t;
  }
  std::vector<double> slopes;
  const std::size_t total_pairs = n * (n - 1) / 2;
  if (total_pairs <= max_pairs) {
    slopes.reserve(total_pairs);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        slopes.push_back((y[j] - y[i]) / static_cast<double>(j - i));
      }
    }
  } else {
    // Deterministic subsample of pairs.
    Rng rng(0xDA7A5EEDULL + n);
    slopes.reserve(max_pairs);
    for (std::size_t k = 0; k < max_pairs; ++k) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(i) + 1,
                          static_cast<std::int64_t>(n) - 1));
      slopes.push_back((y[j] - y[i]) / static_cast<double>(j - i));
    }
  }
  t.slope = oda::median(slopes);
  // Intercept: median of y_i - slope*i.
  std::vector<double> intercepts(n);
  for (std::size_t i = 0; i < n; ++i) {
    intercepts[i] = y[i] - t.slope * static_cast<double>(i);
  }
  t.intercept = oda::median(intercepts);
  return t;
}

}  // namespace oda::math
