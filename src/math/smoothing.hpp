// Exponential smoothing family: simple (SES), Holt's linear trend, and
// Holt–Winters additive seasonal. These are the workhorse forecasters for
// diurnal facility signals (power, temperature, cooling demand).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace oda::math {

/// Simple exponential smoothing. Flat forecast at the last level.
class SimpleExpSmoother {
 public:
  explicit SimpleExpSmoother(double alpha);

  void add(double x);
  bool initialized() const { return initialized_; }
  double level() const { return level_; }
  double forecast() const { return level_; }
  void fit(std::span<const double> xs);

 private:
  double alpha_;
  double level_ = 0.0;
  bool initialized_ = false;
};

/// Holt's linear method (level + trend).
class HoltSmoother {
 public:
  HoltSmoother(double alpha, double beta);

  void add(double x);
  double level() const { return level_; }
  double trend() const { return trend_; }
  double forecast(std::size_t h = 1) const;
  void fit(std::span<const double> xs);

 private:
  double alpha_, beta_;
  double level_ = 0.0, trend_ = 0.0;
  double last_ = 0.0;
  std::size_t n_ = 0;
};

/// Holt–Winters additive seasonal method. Requires two full seasons to
/// initialize; until then it behaves like Holt's method.
class HoltWinters {
 public:
  HoltWinters(double alpha, double beta, double gamma, std::size_t period);

  void add(double x);
  std::size_t period() const { return period_; }
  bool seasonal_ready() const { return seasonal_ready_; }
  double forecast(std::size_t h = 1) const;
  std::vector<double> forecast_path(std::size_t horizon) const;
  void fit(std::span<const double> xs);
  const std::vector<double>& seasonal() const { return seasonal_; }

 private:
  void initialize_seasonal();

  double alpha_, beta_, gamma_;
  std::size_t period_;
  double level_ = 0.0, trend_ = 0.0;
  std::vector<double> seasonal_;
  std::vector<double> warmup_;
  std::size_t t_ = 0;  // samples consumed after seasonal init
  bool seasonal_ready_ = false;
};

}  // namespace oda::math
