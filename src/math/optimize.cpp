#include "math/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace oda::math {

OptResult1D golden_section(const Objective1D& f, double lo, double hi,
                           double tol, std::size_t max_iter) {
  ODA_REQUIRE(lo <= hi, "golden_section bounds inverted");
  constexpr double kInvPhi = 0.6180339887498949;
  OptResult1D result;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c), fd = f(d);
  result.evaluations = 2;
  for (std::size_t i = 0; i < max_iter && (b - a) > tol; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
    ++result.evaluations;
  }
  result.x = (a + b) / 2.0;
  result.value = f(result.x);
  ++result.evaluations;
  return result;
}

OptResultND coordinate_descent(const ObjectiveND& f, std::vector<double> x0,
                               std::vector<double> step, std::size_t max_iter,
                               double tol) {
  ODA_REQUIRE(x0.size() == step.size(), "coordinate_descent dim mismatch");
  OptResultND result;
  result.x = std::move(x0);
  result.value = f(result.x);
  result.evaluations = 1;

  const std::size_t dim = result.x.size();
  std::vector<double> steps = std::move(step);
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    bool improved = false;
    for (std::size_t d = 0; d < dim; ++d) {
      for (const double dir : {+1.0, -1.0}) {
        std::vector<double> candidate = result.x;
        candidate[d] += dir * steps[d];
        const double v = f(candidate);
        ++result.evaluations;
        if (v < result.value - tol) {
          result.value = v;
          result.x = std::move(candidate);
          improved = true;
          break;
        }
      }
    }
    if (!improved) {
      bool any_large = false;
      for (double& s : steps) {
        s *= 0.5;
        if (s > tol) any_large = true;
      }
      if (!any_large) break;
    }
  }
  return result;
}

OptResultND nelder_mead(const ObjectiveND& f, std::vector<double> x0,
                        double initial_step, std::size_t max_iter, double tol) {
  const std::size_t dim = x0.size();
  ODA_REQUIRE(dim >= 1, "nelder_mead needs at least one dimension");
  OptResultND result;

  // Initial simplex: x0 plus one offset vertex per dimension.
  std::vector<std::vector<double>> simplex;
  simplex.push_back(x0);
  for (std::size_t d = 0; d < dim; ++d) {
    auto v = x0;
    v[d] += initial_step;
    simplex.push_back(std::move(v));
  }
  std::vector<double> values(simplex.size());
  for (std::size_t i = 0; i < simplex.size(); ++i) {
    values[i] = f(simplex[i]);
    ++result.evaluations;
  }

  constexpr double kAlpha = 1.0, kGamma = 2.0, kRho = 0.5, kSigma = 0.5;
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    // Order vertices by value.
    std::vector<std::size_t> order(simplex.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[order.size() - 2];

    if (std::abs(values[worst] - values[best]) < tol) break;

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(dim, 0.0);
    for (std::size_t i : order) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < dim; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(dim);

    const auto blend = [&](double coeff) {
      std::vector<double> out(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        out[d] = centroid[d] + coeff * (simplex[worst][d] - centroid[d]);
      }
      return out;
    };

    const auto reflected = blend(-kAlpha);
    const double fr = f(reflected);
    ++result.evaluations;
    if (fr < values[best]) {
      const auto expanded = blend(-kGamma);
      const double fe = f(expanded);
      ++result.evaluations;
      if (fe < fr) {
        simplex[worst] = expanded;
        values[worst] = fe;
      } else {
        simplex[worst] = reflected;
        values[worst] = fr;
      }
    } else if (fr < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = fr;
    } else {
      const auto contracted = blend(kRho);
      const double fc = f(contracted);
      ++result.evaluations;
      if (fc < values[worst]) {
        simplex[worst] = contracted;
        values[worst] = fc;
      } else {
        // Shrink everything toward the best vertex.
        for (std::size_t i = 0; i < simplex.size(); ++i) {
          if (i == best) continue;
          for (std::size_t d = 0; d < dim; ++d) {
            simplex[i][d] = simplex[best][d] + kSigma * (simplex[i][d] - simplex[best][d]);
          }
          values[i] = f(simplex[i]);
          ++result.evaluations;
        }
      }
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] < values[best]) best = i;
  }
  result.x = simplex[best];
  result.value = values[best];
  return result;
}

OptResultND simulated_annealing(const ObjectiveND& f, std::span<const double> lo,
                                std::span<const double> hi,
                                const AnnealParams& params, Rng& rng) {
  ODA_REQUIRE(lo.size() == hi.size(), "annealing box dim mismatch");
  const std::size_t dim = lo.size();
  OptResultND result;
  result.x.resize(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    ODA_REQUIRE(lo[d] <= hi[d], "annealing box inverted");
    result.x[d] = rng.uniform(lo[d], hi[d]);
  }
  result.value = f(result.x);
  result.evaluations = 1;

  std::vector<double> current = result.x;
  double current_value = result.value;
  double temperature = params.initial_temperature;

  for (std::size_t step = 0; step < params.steps; ++step) {
    std::vector<double> candidate = current;
    for (std::size_t d = 0; d < dim; ++d) {
      const double range = (hi[d] - lo[d]) * params.step_fraction;
      candidate[d] = std::clamp(candidate[d] + rng.normal(0.0, range + 1e-300),
                                lo[d], hi[d]);
    }
    const double v = f(candidate);
    ++result.evaluations;
    const double delta = v - current_value;
    if (delta < 0.0 || rng.uniform() < std::exp(-delta / std::max(temperature, 1e-12))) {
      current = std::move(candidate);
      current_value = v;
      if (current_value < result.value) {
        result.value = current_value;
        result.x = current;
      }
    }
    temperature *= params.cooling_rate;
  }
  return result;
}

OptResultND grid_search(const ObjectiveND& f,
                        const std::vector<std::vector<double>>& levels) {
  ODA_REQUIRE(!levels.empty(), "grid_search needs dimensions");
  for (const auto& l : levels) {
    ODA_REQUIRE(!l.empty(), "grid_search empty level set");
  }
  OptResultND result;
  result.value = std::numeric_limits<double>::infinity();

  std::vector<std::size_t> idx(levels.size(), 0);
  std::vector<double> point(levels.size());
  while (true) {
    for (std::size_t d = 0; d < levels.size(); ++d) point[d] = levels[d][idx[d]];
    const double v = f(point);
    ++result.evaluations;
    if (v < result.value) {
      result.value = v;
      result.x = point;
    }
    // Odometer increment.
    std::size_t d = 0;
    while (d < idx.size()) {
      if (++idx[d] < levels[d].size()) break;
      idx[d] = 0;
      ++d;
    }
    if (d == idx.size()) break;
  }
  return result;
}

OptResultND random_search(const ObjectiveND& f, std::span<const double> lo,
                          std::span<const double> hi, std::size_t samples,
                          Rng& rng) {
  ODA_REQUIRE(lo.size() == hi.size(), "random_search box dim mismatch");
  ODA_REQUIRE(samples > 0, "random_search needs samples");
  OptResultND result;
  result.value = std::numeric_limits<double>::infinity();
  std::vector<double> point(lo.size());
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t d = 0; d < lo.size(); ++d) {
      point[d] = rng.uniform(lo[d], hi[d]);
    }
    const double v = f(point);
    ++result.evaluations;
    if (v < result.value) {
      result.value = v;
      result.x = point;
    }
  }
  return result;
}

}  // namespace oda::math
