#include "math/fft.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace oda::math {

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Bluestein's algorithm: re-expresses an arbitrary-size DFT as a
/// convolution, evaluated with power-of-two FFTs.
std::vector<Complex> bluestein(const std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp w_k = exp(sign * i * pi * k^2 / n); k^2 mod 2n keeps the argument
  // bounded for large k.
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * M_PI * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }

  const std::size_t m = next_power_of_two(2 * n - 1);
  std::vector<Complex> a(m, Complex(0, 0));
  std::vector<Complex> b(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(chirp[k]);
  }

  fft_radix2(a, false);
  fft_radix2(b, false);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  fft_radix2(a, true);

  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  return out;
}

}  // namespace

void fft_radix2(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  ODA_REQUIRE(is_power_of_two(n), "fft_radix2 size must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1, 0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& c : data) c /= static_cast<double>(n);
  }
}

std::vector<Complex> fft(std::vector<Complex> data) {
  if (data.empty()) return data;
  if (is_power_of_two(data.size())) {
    fft_radix2(data, false);
    return data;
  }
  return bluestein(data, false);
}

std::vector<Complex> ifft(std::vector<Complex> data) {
  if (data.empty()) return data;
  if (is_power_of_two(data.size())) {
    fft_radix2(data, true);
    return data;
  }
  auto out = bluestein(data, true);
  const double inv = 1.0 / static_cast<double>(out.size());
  for (auto& c : out) c *= inv;
  return out;
}

std::vector<Complex> fft_real(std::span<const double> signal) {
  std::vector<Complex> data(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = Complex(signal[i], 0.0);
  return fft(std::move(data));
}

std::vector<double> power_spectrum(std::span<const double> signal) {
  const std::size_t n = signal.size();
  if (n == 0) return {};
  const auto spec = fft_real(signal);
  std::vector<double> out(n / 2 + 1);
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = std::norm(spec[k]) / static_cast<double>(n);
  }
  return out;
}

double bin_frequency(std::size_t k, std::size_t n) {
  ODA_REQUIRE(n > 0, "bin_frequency of empty transform");
  return static_cast<double>(k) / static_cast<double>(n);
}

std::vector<SpectralComponent> dominant_components(std::span<const double> signal,
                                                   std::size_t count) {
  const std::size_t n = signal.size();
  if (n < 4 || count == 0) return {};
  // Remove the mean so bin 0 does not dominate.
  const double m = oda::mean(signal);
  std::vector<Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = Complex(signal[i] - m, 0.0);
  const auto spec = fft(std::move(data));

  std::vector<std::size_t> bins(n / 2);
  for (std::size_t k = 1; k <= n / 2; ++k) bins[k - 1] = k;
  std::sort(bins.begin(), bins.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(spec[a]) > std::abs(spec[b]);
  });

  std::vector<SpectralComponent> out;
  out.reserve(std::min(count, bins.size()));
  for (std::size_t i = 0; i < bins.size() && out.size() < count; ++i) {
    const std::size_t k = bins[i];
    SpectralComponent c;
    c.frequency = bin_frequency(k, n);
    // One-sided amplitude: 2|X_k|/n (the conjugate bin carries the rest);
    // the Nyquist bin (k == n/2 for even n) is not doubled.
    const bool nyquist = (n % 2 == 0) && (k == n / 2);
    c.amplitude = (nyquist ? 1.0 : 2.0) * std::abs(spec[k]) / static_cast<double>(n);
    c.phase = std::arg(spec[k]);
    out.push_back(c);
  }
  return out;
}

std::vector<double> synthesize(double mean,
                               std::span<const SpectralComponent> components,
                               std::size_t length) {
  std::vector<double> out(length, mean);
  for (const auto& c : components) {
    for (std::size_t t = 0; t < length; ++t) {
      out[t] += c.amplitude *
                std::cos(2.0 * M_PI * c.frequency * static_cast<double>(t) + c.phase);
    }
  }
  return out;
}

std::vector<double> fft_autocorrelation(std::span<const double> signal,
                                        std::size_t max_lag) {
  const std::size_t n = signal.size();
  if (n < 2) return std::vector<double>(max_lag + 1, 0.0);
  const double m = oda::mean(signal);
  // Zero-pad to 2n to get linear (not cyclic) correlation.
  const std::size_t padded = next_power_of_two(2 * n);
  std::vector<Complex> data(padded, Complex(0, 0));
  for (std::size_t i = 0; i < n; ++i) data[i] = Complex(signal[i] - m, 0.0);
  fft_radix2(data, false);
  for (auto& c : data) c = Complex(std::norm(c), 0.0);
  fft_radix2(data, true);

  std::vector<double> out(max_lag + 1, 0.0);
  const double norm0 = data[0].real();
  if (norm0 <= 0.0) return out;
  for (std::size_t lag = 0; lag <= max_lag && lag < n; ++lag) {
    out[lag] = data[lag].real() / norm0;
  }
  return out;
}

}  // namespace oda::math
