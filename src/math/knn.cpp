#include "math/knn.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace oda::math {

namespace {

double euclidean(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::vector<std::size_t> k_nearest(const std::vector<std::vector<double>>& points,
                                   std::span<const double> query, std::size_t k) {
  std::vector<std::size_t> idx(points.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, points.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return euclidean(points[a], query) < euclidean(points[b], query);
                    });
  idx.resize(k);
  return idx;
}

}  // namespace

void KnnRegressor::add(std::vector<double> features, double target) {
  if (!points_.empty()) {
    ODA_REQUIRE(features.size() == points_[0].size(), "knn feature dim mismatch");
  }
  points_.push_back(std::move(features));
  targets_.push_back(target);
}

std::vector<std::size_t> KnnRegressor::nearest(std::span<const double> features,
                                               std::size_t k) const {
  return k_nearest(points_, features, k);
}

double KnnRegressor::predict(std::span<const double> features, std::size_t k) const {
  if (targets_.empty()) return 0.0;
  const auto idx = nearest(features, k);
  double weight_sum = 0.0, acc = 0.0;
  for (std::size_t i : idx) {
    const double d = euclidean(points_[i], features);
    const double w = 1.0 / (d + 1e-9);
    weight_sum += w;
    acc += w * targets_[i];
  }
  return acc / weight_sum;
}

double KnnRegressor::predict_quantile(std::span<const double> features,
                                      std::size_t k, double q) const {
  if (targets_.empty()) return 0.0;
  const auto idx = nearest(features, k);
  std::vector<double> vals;
  vals.reserve(idx.size());
  for (std::size_t i : idx) vals.push_back(targets_[i]);
  return quantile(vals, q);
}

void KnnClassifier::add(std::vector<double> features, std::string label) {
  if (!points_.empty()) {
    ODA_REQUIRE(features.size() == points_[0].size(), "knn feature dim mismatch");
  }
  points_.push_back(std::move(features));
  labels_.push_back(std::move(label));
}

std::string KnnClassifier::predict(std::span<const double> features,
                                   std::size_t k) const {
  if (labels_.empty()) return {};
  const auto idx = k_nearest(points_, features, k);
  std::map<std::string, double> votes;
  for (std::size_t i : idx) {
    const double d = euclidean(points_[i], features);
    votes[labels_[i]] += 1.0 / (d + 1e-9);
  }
  return std::max_element(votes.begin(), votes.end(),
                          [](const auto& a, const auto& b) {
                            return a.second < b.second;
                          })
      ->first;
}

double KnnClassifier::confidence(std::span<const double> features,
                                 std::size_t k) const {
  if (labels_.empty()) return 0.0;
  const auto idx = k_nearest(points_, features, k);
  std::map<std::string, double> votes;
  double total = 0.0;
  for (std::size_t i : idx) {
    const double d = euclidean(points_[i], features);
    const double w = 1.0 / (d + 1e-9);
    votes[labels_[i]] += w;
    total += w;
  }
  double best = 0.0;
  for (const auto& [label, v] : votes) best = std::max(best, v);
  return total > 0.0 ? best / total : 0.0;
}

}  // namespace oda::math
