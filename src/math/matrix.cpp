#include "math/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace oda::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    ODA_REQUIRE(r.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    ODA_REQUIRE(rows[r].size() == m.cols_, "ragged rows for Matrix::from_rows");
    std::copy(rows[r].begin(), rows[r].end(), m.data_.begin() +
              static_cast<std::ptrdiff_t>(r * m.cols_));
  }
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  ODA_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  ODA_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  ODA_REQUIRE(r < rows_, "row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  ODA_REQUIRE(r < rows_, "row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::col(std::size_t c) const {
  ODA_REQUIRE(c < cols_, "col out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = data_[r * cols_ + c];
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  ODA_REQUIRE(cols_ == rhs.rows_, "matrix multiply dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  // i-k-j loop order keeps the inner loop streaming over contiguous memory.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* rhs_row = rhs.data_.data() + k * rhs.cols_;
      double* out_row = out.data_.data() + i * rhs.cols_;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out_row[j] += a * rhs_row[j];
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> v) const {
  ODA_REQUIRE(cols_ == v.size(), "matrix-vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  ODA_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix add mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  ODA_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix sub mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  ODA_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix diff mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
  }
  return m;
}

std::vector<double> lu_solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  ODA_REQUIRE(a.cols() == n, "lu_solve needs a square matrix");
  ODA_REQUIRE(b.size() == n, "lu_solve rhs size mismatch");

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t pivot = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    ODA_REQUIRE(best > 1e-14, "lu_solve: singular matrix");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(pivot, c));
      std::swap(b[k], b[pivot]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a(i, k) / a(k, k);
      a(i, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) a(i, c) -= factor * a(k, c);
      b[i] -= factor * b[k];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a(i, c) * x[c];
    x[i] = acc / a(i, i);
  }
  return x;
}

Matrix cholesky(const Matrix& a) {
  const std::size_t n = a.rows();
  ODA_REQUIRE(a.cols() == n, "cholesky needs a square matrix");
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        ODA_REQUIRE(sum > 0.0, "cholesky: matrix not positive definite");
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b) {
  const Matrix l = cholesky(a);
  const std::size_t n = l.rows();
  ODA_REQUIRE(b.size() == n, "cholesky_solve rhs size mismatch");
  // Forward: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  // Backward: Lᵀ x = y.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = y[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= l(k, i) * x[k];
    x[i] = acc / l(i, i);
  }
  return x;
}

QrDecomposition qr_decompose(const Matrix& a) {
  QrDecomposition d;
  d.m = a.rows();
  d.n = a.cols();
  ODA_REQUIRE(d.m >= d.n, "qr_decompose needs rows >= cols");
  d.qr = a;
  d.tau.assign(d.n, 0.0);

  for (std::size_t k = 0; k < d.n; ++k) {
    // Householder vector for column k.
    double norm = 0.0;
    for (std::size_t i = k; i < d.m; ++i) norm += d.qr(i, k) * d.qr(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      d.tau[k] = 0.0;
      continue;
    }
    const double alpha = d.qr(k, k) >= 0.0 ? -norm : norm;
    // v = x - alpha*e1, stored in place with v[0] normalized to 1.
    const double v0 = d.qr(k, k) - alpha;
    for (std::size_t i = k + 1; i < d.m; ++i) d.qr(i, k) /= v0;
    d.tau[k] = -v0 / alpha;  // beta = 2/(vᵀv) expressed via v0 and alpha
    d.qr(k, k) = alpha;

    // Apply the reflector to the remaining columns.
    for (std::size_t j = k + 1; j < d.n; ++j) {
      double dot = d.qr(k, j);
      for (std::size_t i = k + 1; i < d.m; ++i) dot += d.qr(i, k) * d.qr(i, j);
      dot *= d.tau[k];
      d.qr(k, j) -= dot;
      for (std::size_t i = k + 1; i < d.m; ++i) d.qr(i, j) -= dot * d.qr(i, k);
    }
  }
  return d;
}

std::vector<double> QrDecomposition::solve(std::span<const double> b) const {
  ODA_REQUIRE(b.size() == m, "QR solve rhs size mismatch");
  std::vector<double> y(b.begin(), b.end());
  // Apply Qᵀ to y.
  for (std::size_t k = 0; k < n; ++k) {
    if (tau[k] == 0.0) continue;
    double dot = y[k];
    for (std::size_t i = k + 1; i < m; ++i) dot += qr(i, k) * y[i];
    dot *= tau[k];
    y[k] -= dot;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= dot * qr(i, k);
  }
  // Back substitution with R.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = y[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= qr(i, c) * x[c];
    ODA_REQUIRE(std::abs(qr(i, i)) > 1e-14, "QR solve: rank-deficient matrix");
    x[i] = acc / qr(i, i);
  }
  return x;
}

Matrix QrDecomposition::r() const {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) out(i, j) = qr(i, j);
  }
  return out;
}

EigenResult jacobi_eigen(Matrix a, double tol, int max_sweeps) {
  const std::size_t n = a.rows();
  ODA_REQUIRE(a.cols() == n, "jacobi_eigen needs a square matrix");
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (std::sqrt(2.0 * off) <= tol * (a.frobenius_norm() + 1e-300)) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenResult result;
  result.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.values[i] = a(i, i);

  // Sort descending by eigenvalue, permuting eigenvector columns to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return result.values[x] > result.values[y];
  });
  EigenResult sorted;
  sorted.values.resize(n);
  sorted.vectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted.values[i] = result.values[order[i]];
    for (std::size_t r = 0; r < n; ++r) sorted.vectors(r, i) = v(r, order[i]);
  }
  return sorted;
}

}  // namespace oda::math
