// Dense row-major matrix with the decompositions the analytics layer needs:
// LU solve (regression fallback), Cholesky (normal equations), Householder QR
// (least squares), and cyclic Jacobi eigendecomposition (PCA). Sizes here are
// small (feature dimensions, not meshes), so clarity wins over blocking.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace oda::math {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Row-major construction from nested initializer lists.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Builds a matrix whose rows are the given feature vectors.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;
  std::vector<double> col(std::size_t c) const;

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  std::vector<double> operator*(std::span<const double> v) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double s);
  Matrix operator*(double s) const;

  double frobenius_norm() const;
  /// Max absolute element difference; used in tests.
  double max_abs_diff(const Matrix& rhs) const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by LU with partial pivoting. Throws ContractError when A is
/// singular to working precision.
std::vector<double> lu_solve(Matrix a, std::vector<double> b);

/// Cholesky factor L (lower) of a symmetric positive-definite A, so A = L Lᵀ.
/// Throws when A is not positive definite.
Matrix cholesky(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky.
std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b);

/// Thin Householder QR of an m×n matrix (m >= n): returns R (n×n upper) and
/// applies the implicit Qᵀ to a right-hand side on demand.
struct QrDecomposition {
  Matrix qr;                    // packed Householder vectors + R
  std::vector<double> tau;      // Householder scalars
  std::size_t m = 0, n = 0;

  /// Least-squares solve min ||A x - b||₂ using the stored factorization.
  std::vector<double> solve(std::span<const double> b) const;
  /// The upper-triangular R factor (n×n).
  Matrix r() const;
};

QrDecomposition qr_decompose(const Matrix& a);

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
/// Returns eigenvalues (descending) and matching unit eigenvectors (columns).
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;  // column i is the eigenvector for values[i]
};

EigenResult jacobi_eigen(Matrix a, double tol = 1e-12, int max_sweeps = 64);

}  // namespace oda::math
