// Time-series transforms shared by the forecasters and detectors:
// differencing, detrending, normalization, smoothing, autocorrelation, and
// seasonality detection/decomposition.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace oda::math {

/// First difference: out[i] = x[i+1] - x[i] (size n-1).
std::vector<double> difference(std::span<const double> xs);

/// Seasonal difference at the given lag (size n-lag).
std::vector<double> seasonal_difference(std::span<const double> xs, std::size_t lag);

/// Removes the least-squares linear trend.
std::vector<double> detrend(std::span<const double> xs);

/// (x - mean)/std; returns zeros when the series is constant.
std::vector<double> z_normalize(std::span<const double> xs);

/// Centered moving average with the given (odd preferred) window.
std::vector<double> moving_average(std::span<const double> xs, std::size_t window);

/// Trailing moving average (causal; first window-1 values average the prefix).
std::vector<double> trailing_average(std::span<const double> xs, std::size_t window);

/// Sample autocorrelation for lags 0..max_lag.
std::vector<double> acf(std::span<const double> xs, std::size_t max_lag);

/// Detects the dominant seasonal period by the first pronounced ACF peak.
/// Returns 0 when no significant seasonality is found.
std::size_t detect_period(std::span<const double> xs, std::size_t max_period,
                          double min_correlation = 0.3);

/// Classical additive decomposition: x = trend + seasonal + residual.
struct Decomposition {
  std::vector<double> trend;
  std::vector<double> seasonal;  // repeating pattern, length n
  std::vector<double> residual;
};
Decomposition decompose_additive(std::span<const double> xs, std::size_t period);

/// Piecewise-aggregate approximation: mean over segments (dimensionality
/// reduction for fingerprinting).
std::vector<double> paa(std::span<const double> xs, std::size_t segments);

/// Largest run of consecutive values above the threshold.
std::size_t longest_run_above(std::span<const double> xs, double threshold);

}  // namespace oda::math
