#include "math/ar_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "math/matrix.hpp"
#include "math/regression.hpp"

namespace oda::math {

namespace {

/// Autocovariance at lags 0..max_lag (biased estimator, as Yule-Walker wants).
std::vector<double> autocovariance(std::span<const double> xs,
                                   std::size_t max_lag) {
  const std::size_t n = xs.size();
  const double m = oda::mean(xs);
  std::vector<double> out(max_lag + 1, 0.0);
  for (std::size_t lag = 0; lag <= max_lag && lag < n; ++lag) {
    double acc = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      acc += (xs[i] - m) * (xs[i + lag] - m);
    }
    out[lag] = acc / static_cast<double>(n);
  }
  return out;
}

}  // namespace

ArModel ArModel::fit_yule_walker(std::span<const double> xs, std::size_t order) {
  ODA_REQUIRE(order >= 1, "AR order must be >= 1");
  ODA_REQUIRE(xs.size() > order + 1, "series too short for AR order");
  ArModel model;
  model.mean_ = oda::mean(xs);

  const auto gamma = autocovariance(xs, order);
  if (gamma[0] <= 0.0) {
    // Constant series: predict the mean.
    model.phi_.assign(order, 0.0);
    model.noise_var_ = 0.0;
    return model;
  }

  // Levinson–Durbin recursion.
  std::vector<double> phi(order, 0.0);
  std::vector<double> prev(order, 0.0);
  double e = gamma[0];
  for (std::size_t k = 0; k < order; ++k) {
    double acc = gamma[k + 1];
    for (std::size_t j = 0; j < k; ++j) acc -= prev[j] * gamma[k - j];
    const double reflection = acc / e;
    phi = prev;
    phi[k] = reflection;
    for (std::size_t j = 0; j < k; ++j) {
      phi[j] = prev[j] - reflection * prev[k - 1 - j];
    }
    e *= (1.0 - reflection * reflection);
    if (e <= 0.0) {
      e = 1e-12;  // numerically perfect fit
    }
    prev = phi;
  }
  model.phi_ = std::move(phi);
  model.noise_var_ = e;
  return model;
}

ArModel ArModel::fit_least_squares(std::span<const double> xs, std::size_t order) {
  ODA_REQUIRE(order >= 1, "AR order must be >= 1");
  ODA_REQUIRE(xs.size() > 2 * order + 1, "series too short for AR-LS order");
  ArModel model;
  model.mean_ = oda::mean(xs);

  const std::size_t n = xs.size();
  const std::size_t rows = n - order;
  Matrix x(rows, order);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < order; ++c) {
      // Column c holds lag c+1 (most recent lag first).
      x(r, c) = xs[r + order - 1 - c] - model.mean_;
    }
    y[r] = xs[r + order] - model.mean_;
  }
  // Ridge with a tiny lambda guards against collinear lags.
  const auto lm = fit_ridge(x, y, 1e-8);
  model.phi_ = lm.coefficients;

  const auto res = model.residuals(xs);
  model.noise_var_ = res.empty() ? 0.0 : oda::variance(res);
  return model;
}

double ArModel::predict_next(std::span<const double> history) const {
  ODA_REQUIRE(history.size() >= order(), "history shorter than AR order");
  double acc = mean_;
  for (std::size_t i = 0; i < order(); ++i) {
    // phi_[i] multiplies lag i+1.
    acc += phi_[i] * (history[history.size() - 1 - i] - mean_);
  }
  return acc;
}

std::vector<double> ArModel::forecast(std::span<const double> history,
                                      std::size_t horizon) const {
  ODA_REQUIRE(history.size() >= order(), "history shorter than AR order");
  std::vector<double> extended(history.begin(), history.end());
  std::vector<double> out;
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    const double next = predict_next(extended);
    out.push_back(next);
    extended.push_back(next);
  }
  return out;
}

std::vector<double> ArModel::residuals(std::span<const double> xs) const {
  const std::size_t p = order();
  if (xs.size() <= p) return {};
  std::vector<double> out;
  out.reserve(xs.size() - p);
  for (std::size_t i = p; i < xs.size(); ++i) {
    const double pred = predict_next(xs.subspan(0, i));
    out.push_back(xs[i] - pred);
  }
  return out;
}

std::size_t select_ar_order(std::span<const double> xs, std::size_t max_order) {
  ODA_REQUIRE(max_order >= 1, "max_order must be >= 1");
  std::size_t best_order = 1;
  double best_aic = std::numeric_limits<double>::infinity();
  for (std::size_t p = 1; p <= max_order && xs.size() > p + 2; ++p) {
    const auto model = ArModel::fit_yule_walker(xs, p);
    const auto res = model.residuals(xs);
    if (res.empty()) continue;
    double rss = 0.0;
    for (double r : res) rss += r * r;
    const double n = static_cast<double>(res.size());
    const double sigma2 = std::max(rss / n, 1e-300);
    // BIC rather than AIC: the log(n) complexity penalty is consistent for
    // order selection, where AIC systematically overfits long series.
    const double bic = n * std::log(sigma2) + std::log(n) * static_cast<double>(p);
    if (bic < best_aic) {
      best_aic = bic;
      best_order = p;
    }
  }
  return best_order;
}

}  // namespace oda::math
