#include "math/pca.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oda::math {

Pca Pca::fit(const Matrix& data, std::size_t components, bool scale) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  ODA_REQUIRE(n >= 2, "PCA needs at least two observations");
  ODA_REQUIRE(d >= 1, "PCA needs at least one feature");
  if (components == 0 || components > d) components = d;

  Pca pca;
  pca.mean_.assign(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) pca.mean_[c] += data(r, c);
  }
  for (double& m : pca.mean_) m /= static_cast<double>(n);

  pca.scale_.assign(d, 1.0);
  if (scale) {
    for (std::size_t c = 0; c < d; ++c) {
      double s = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double v = data(r, c) - pca.mean_[c];
        s += v * v;
      }
      s = std::sqrt(s / static_cast<double>(n - 1));
      pca.scale_[c] = s > 1e-12 ? s : 1.0;
    }
  }

  // Sample covariance of the standardized data.
  Matrix cov(d, d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < d; ++i) {
      const double xi = (data(r, i) - pca.mean_[i]) / pca.scale_[i];
      for (std::size_t j = i; j < d; ++j) {
        const double xj = (data(r, j) - pca.mean_[j]) / pca.scale_[j];
        cov(i, j) += xi * xj;
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) *= inv;
      cov(j, i) = cov(i, j);
    }
  }

  const auto eig = jacobi_eigen(cov);
  pca.total_variance_ = 0.0;
  for (double v : eig.values) pca.total_variance_ += std::max(v, 0.0);

  pca.components_ = Matrix(d, components);
  pca.explained_.resize(components);
  for (std::size_t k = 0; k < components; ++k) {
    pca.explained_[k] = std::max(eig.values[k], 0.0);
    for (std::size_t r = 0; r < d; ++r) {
      pca.components_(r, k) = eig.vectors(r, k);
    }
  }
  return pca;
}

double Pca::explained_variance_ratio() const {
  if (total_variance_ <= 0.0) return 1.0;
  double kept = 0.0;
  for (double v : explained_) kept += v;
  return kept / total_variance_;
}

std::vector<double> Pca::transform(std::span<const double> sample) const {
  ODA_REQUIRE(sample.size() == input_dim(), "PCA transform dim mismatch");
  const std::size_t d = input_dim();
  const std::size_t k = n_components();
  std::vector<double> out(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      acc += components_(i, j) * (sample[i] - mean_[i]) / scale_[i];
    }
    out[j] = acc;
  }
  return out;
}

std::vector<double> Pca::inverse_transform(std::span<const double> coords) const {
  ODA_REQUIRE(coords.size() == n_components(), "PCA inverse dim mismatch");
  const std::size_t d = input_dim();
  std::vector<double> out(d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < coords.size(); ++j) {
      acc += components_(i, j) * coords[j];
    }
    out[i] = acc * scale_[i] + mean_[i];
  }
  return out;
}

double Pca::reconstruction_error(std::span<const double> sample) const {
  const auto recon = inverse_transform(transform(sample));
  double err = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double diff = (sample[i] - recon[i]) / scale_[i];
    err += diff * diff;
  }
  return std::sqrt(err);
}

}  // namespace oda::math
