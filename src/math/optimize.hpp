// Derivative-free optimizers for prescriptive ODA: cooling set-point tuning
// (1-D golden section), knob tuning (coordinate descent / Nelder–Mead /
// simulated annealing), and application auto-tuning (grid / random search).
// All minimize; negate the objective to maximize.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace oda::math {

using Objective1D = std::function<double(double)>;
using ObjectiveND = std::function<double(std::span<const double>)>;

struct OptResult1D {
  double x = 0.0;
  double value = 0.0;
  std::size_t evaluations = 0;
};

struct OptResultND {
  std::vector<double> x;
  double value = 0.0;
  std::size_t evaluations = 0;
};

/// Golden-section search on [lo, hi] (assumes unimodality there).
OptResult1D golden_section(const Objective1D& f, double lo, double hi,
                           double tol = 1e-6, std::size_t max_iter = 200);

/// Cyclic coordinate descent with shrinking steps from an initial point.
OptResultND coordinate_descent(const ObjectiveND& f, std::vector<double> x0,
                               std::vector<double> step,
                               std::size_t max_iter = 200, double tol = 1e-8);

/// Nelder–Mead simplex.
OptResultND nelder_mead(const ObjectiveND& f, std::vector<double> x0,
                        double initial_step = 1.0, std::size_t max_iter = 500,
                        double tol = 1e-10);

/// Simulated annealing within a box.
struct AnnealParams {
  double initial_temperature = 1.0;
  double cooling_rate = 0.95;   // temperature multiplier per step
  std::size_t steps = 1000;
  double step_fraction = 0.1;   // proposal size relative to the box
};
OptResultND simulated_annealing(const ObjectiveND& f,
                                std::span<const double> lo,
                                std::span<const double> hi,
                                const AnnealParams& params, Rng& rng);

/// Exhaustive grid search; `levels[i]` are candidate values for dimension i.
OptResultND grid_search(const ObjectiveND& f,
                        const std::vector<std::vector<double>>& levels);

/// Uniform random search within a box.
OptResultND random_search(const ObjectiveND& f, std::span<const double> lo,
                          std::span<const double> hi, std::size_t samples,
                          Rng& rng);

}  // namespace oda::math
