// Principal component analysis via Jacobi eigendecomposition of the sample
// covariance matrix. The diagnostic pillar uses PCA both for dimensionality
// reduction and as an "autoencoder-lite" anomaly detector: samples that
// reconstruct poorly from the top-k subspace are anomalous.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "math/matrix.hpp"

namespace oda::math {

class Pca {
 public:
  /// Fits on rows-as-observations data, keeping `components` dimensions
  /// (0 = keep all). Data is centered (and optionally scaled to unit
  /// variance) internally.
  static Pca fit(const Matrix& data, std::size_t components = 0,
                 bool scale = false);

  std::size_t input_dim() const { return mean_.size(); }
  std::size_t n_components() const { return components_.cols(); }
  const std::vector<double>& explained_variance() const { return explained_; }
  /// Fraction of total variance captured by the kept components.
  double explained_variance_ratio() const;

  /// Projects a sample into component space.
  std::vector<double> transform(std::span<const double> sample) const;
  /// Maps component-space coordinates back to the original space.
  std::vector<double> inverse_transform(std::span<const double> coords) const;
  /// L2 distance between a sample and its projection onto the subspace —
  /// the PCA reconstruction-error anomaly score.
  double reconstruction_error(std::span<const double> sample) const;

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;      // per-feature std (1.0 when not scaling)
  Matrix components_;              // input_dim × n_components
  std::vector<double> explained_;  // per kept component
  double total_variance_ = 0.0;
};

}  // namespace oda::math
