// CART-style decision tree and a bagged random forest classifier. Supervised
// counterpart to the isolation forest: application fingerprinting and online
// performance-variation diagnosis (Tuncer et al. [16]) train these on labeled
// telemetry features.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace oda::math {

struct LabeledSample {
  std::vector<double> features;
  std::size_t label = 0;  // dense class index
};

class DecisionTree {
 public:
  struct Params {
    std::size_t max_depth = 12;
    std::size_t min_samples_split = 4;
    /// Features considered per split; 0 = all (sqrt(d) for forests).
    std::size_t max_features = 0;
  };

  static DecisionTree fit(const std::vector<LabeledSample>& data,
                          std::size_t n_classes, const Params& params, Rng& rng);

  std::size_t predict(std::span<const double> features) const;
  /// Per-class probability estimate from the reached leaf.
  std::vector<double> predict_proba(std::span<const double> features) const;
  std::size_t n_classes() const { return n_classes_; }

 private:
  struct Node {
    int feature = -1;  // -1 marks a leaf
    double threshold = 0.0;
    std::vector<double> class_probs;  // leaf only
    std::unique_ptr<Node> left, right;
  };

  static std::unique_ptr<Node> build(const std::vector<LabeledSample>& data,
                                     std::vector<std::size_t>& idx,
                                     std::size_t n_classes, const Params& params,
                                     std::size_t depth, Rng& rng);
  static double gini(const std::vector<std::size_t>& counts, std::size_t total);

  std::unique_ptr<Node> root_;
  std::size_t n_classes_ = 0;
};

class RandomForest {
 public:
  struct Params {
    std::size_t n_trees = 50;
    DecisionTree::Params tree;
  };

  static RandomForest fit(const std::vector<LabeledSample>& data,
                          std::size_t n_classes, const Params& params, Rng& rng);

  std::size_t predict(std::span<const double> features) const;
  std::vector<double> predict_proba(std::span<const double> features) const;
  std::size_t tree_count() const { return trees_.size(); }
  std::size_t n_classes() const { return n_classes_; }

 private:
  std::vector<DecisionTree> trees_;
  std::size_t n_classes_ = 0;
};

}  // namespace oda::math
