#include "math/isolation_forest.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oda::math {

double IsolationForest::c_factor(std::size_t n) {
  if (n <= 1) return 0.0;
  const double nn = static_cast<double>(n);
  const double harmonic = std::log(nn - 1.0) + 0.5772156649015329;
  return 2.0 * harmonic - 2.0 * (nn - 1.0) / nn;
}

std::unique_ptr<IsolationForest::Node> IsolationForest::build_tree(
    std::vector<std::size_t>& idx, const std::vector<std::vector<double>>& data,
    std::size_t depth, std::size_t max_depth, Rng& rng) {
  auto node = std::make_unique<Node>();
  if (idx.size() <= 1 || depth >= max_depth) {
    node->size = idx.size();
    return node;
  }
  const std::size_t dim = data[0].size();
  // Pick a feature with spread; give up after a few tries (constant data).
  int feature = -1;
  double lo = 0.0, hi = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto f = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(dim) - 1));
    lo = hi = data[idx[0]][f];
    for (std::size_t i : idx) {
      lo = std::min(lo, data[i][f]);
      hi = std::max(hi, data[i][f]);
    }
    if (hi > lo) {
      feature = static_cast<int>(f);
      break;
    }
  }
  if (feature < 0) {
    node->size = idx.size();
    return node;
  }
  const double threshold = rng.uniform(lo, hi);
  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : idx) {
    (data[i][static_cast<std::size_t>(feature)] < threshold ? left_idx : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) {
    node->size = idx.size();
    return node;
  }
  node->feature = feature;
  node->threshold = threshold;
  node->left = build_tree(left_idx, data, depth + 1, max_depth, rng);
  node->right = build_tree(right_idx, data, depth + 1, max_depth, rng);
  return node;
}

IsolationForest IsolationForest::fit(const std::vector<std::vector<double>>& data,
                                     const Params& params, Rng& rng) {
  ODA_REQUIRE(!data.empty(), "isolation forest on empty data");
  ODA_REQUIRE(params.n_trees > 0, "isolation forest needs trees");
  const std::size_t dim = data[0].size();
  for (const auto& row : data) {
    ODA_REQUIRE(row.size() == dim, "isolation forest ragged data");
  }

  IsolationForest forest;
  const std::size_t sample = std::min(params.subsample, data.size());
  const auto max_depth =
      static_cast<std::size_t>(std::ceil(std::log2(std::max<std::size_t>(sample, 2))));
  forest.expected_path_ = c_factor(sample);

  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) all[i] = i;

  for (std::size_t t = 0; t < params.n_trees; ++t) {
    Rng tree_rng = rng.split(t + 1);
    std::vector<std::size_t> idx = all;
    tree_rng.shuffle(idx);
    idx.resize(sample);
    forest.trees_.push_back(build_tree(idx, data, 0, max_depth, tree_rng));
  }
  return forest;
}

double IsolationForest::path_length(const Node& node,
                                    std::span<const double> sample,
                                    std::size_t depth) {
  if (node.feature < 0) {
    return static_cast<double>(depth) + c_factor(node.size);
  }
  const auto f = static_cast<std::size_t>(node.feature);
  const Node& next = sample[f] < node.threshold ? *node.left : *node.right;
  return path_length(next, sample, depth + 1);
}

double IsolationForest::score(std::span<const double> sample) const {
  ODA_REQUIRE(!trees_.empty(), "score on unfitted isolation forest");
  double total = 0.0;
  for (const auto& tree : trees_) {
    total += path_length(*tree, sample, 0);
  }
  const double avg = total / static_cast<double>(trees_.size());
  if (expected_path_ <= 0.0) return 0.5;
  return std::pow(2.0, -avg / expected_path_);
}

}  // namespace oda::math
