// Brute-force k-nearest-neighbour regression and classification. Job
// runtime/resource prediction uses the regressor on submission features
// ([30],[31],[34]); application fingerprinting uses the classifier.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace oda::math {

class KnnRegressor {
 public:
  void add(std::vector<double> features, double target);
  std::size_t size() const { return targets_.size(); }

  /// Distance-weighted mean of the k nearest targets; falls back to the
  /// global mean when empty.
  double predict(std::span<const double> features, std::size_t k) const;
  /// Quantile of the k nearest targets (runtime predictors often want a
  /// high quantile to avoid underestimation penalties).
  double predict_quantile(std::span<const double> features, std::size_t k,
                          double q) const;

 private:
  std::vector<std::size_t> nearest(std::span<const double> features,
                                   std::size_t k) const;
  std::vector<std::vector<double>> points_;
  std::vector<double> targets_;
};

class KnnClassifier {
 public:
  void add(std::vector<double> features, std::string label);
  std::size_t size() const { return labels_.size(); }

  /// Majority vote among the k nearest labels (distance-weighted).
  std::string predict(std::span<const double> features, std::size_t k) const;
  /// Vote share of the winning label in [0, 1].
  double confidence(std::span<const double> features, std::size_t k) const;

 private:
  std::vector<std::vector<double>> points_;
  std::vector<std::string> labels_;
};

}  // namespace oda::math
