// Trace-derived critical-path analysis: consumes the span events produced
// by the causal tracer (obs/trace.hpp), reconstructs each trace's span tree
// from the parent ids, and decomposes every root span's wall-clock window
// into the chain of spans that were "last responsible" for each time slice
// — the critical path. Two derived quantities make the 0.96x
// frame_parallel_speedup diagnosable (ROADMAP item 3):
//
//   * per-name critical-path self time: how much of the end-to-end window
//     each span name personally accounts for (root self time on the
//     critical path of a fork-join pass = time spent submitting/joining,
//     i.e. scheduling overhead);
//   * the parallelism coefficient: total busy time across all spans in the
//     tree divided by the root duration — 1.0 means perfectly serial, N
//     means N-wide effective concurrency.
//
// The algorithm is deterministic (documented tie-breaks, integer
// microseconds end to end) so tests can assert exact outputs against
// hand-built DAGs; scripts/analyze_trace.py implements the identical
// algorithm for offline Chrome-trace JSON files and must stay in lockstep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace oda::obs {

/// Per-span-name aggregate within one root's tree.
struct SpanAgg {
  std::string name;
  std::uint64_t count = 0;    ///< spans with this name under the root
  std::uint64_t self_us = 0;  ///< duration not covered by child spans
  std::uint64_t cp_us = 0;    ///< self time lying on the critical path
};

/// Analysis of one root span (one per trace root; a trace with orphaned
/// subtrees yields one report per orphan root).
struct CriticalPathReport {
  std::uint64_t trace_id = 0;
  std::uint64_t root_span_id = 0;
  std::string root_name;
  std::uint64_t root_start_us = 0;
  std::uint64_t root_dur_us = 0;
  /// Length of the critical path through the tree (equals the portion of
  /// the root window attributable to any span — the root itself covers its
  /// whole window, so for well-formed traces this equals root_dur_us; the
  /// decomposition in `top` is the diagnostic payload).
  std::uint64_t critical_path_us = 0;
  std::uint64_t total_busy_us = 0;  ///< sum of self time over all spans
  double parallelism = 0.0;         ///< total_busy_us / root_dur_us
  std::size_t span_count = 0;       ///< spans in this root's tree
  std::vector<SpanAgg> top;         ///< by cp_us desc (tie: self desc, name)
};

/// Builds one report per root span found in `events` (instants and
/// untraced events are ignored). `top_n` caps the per-report aggregate
/// list. Reports are ordered by root duration descending (ties: trace id,
/// then span id ascending) — deterministic for a given event multiset.
std::vector<CriticalPathReport> analyze_critical_path(
    const std::vector<TraceEvent>& events, std::size_t top_n = 10);

/// Human-readable multi-line rendering (self_monitor's report export).
std::string render_critical_path(const std::vector<CriticalPathReport>& reports);

}  // namespace oda::obs
