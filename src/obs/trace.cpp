#include "obs/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace oda::obs {

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

/// Per-thread registration: maps tracer id -> this thread's buffer in that
/// tracer. Keyed by id (not pointer) so a destroyed tracer's address being
/// reused can never alias a stale entry. The tracer holds its own shared_ptr
/// to every buffer, so events survive thread exit until drained.
std::map<std::uint64_t, std::shared_ptr<void>>& thread_buffer_map() {
  thread_local std::map<std::uint64_t, std::shared_ptr<void>> map;
  return map;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer()
    // relaxed: the id only needs uniqueness, not ordering.
    : tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool enabled) {
  // relaxed: see enabled() — an independent flag.
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Tracer::set_capacity(std::size_t max_events) {
  // relaxed: the cap is advisory; record() may overshoot by in-flight spans.
  capacity_.store(max_events, std::memory_order_relaxed);
}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  auto& map = thread_buffer_map();
  const auto it = map.find(tracer_id_);
  if (it != map.end()) {
    return *static_cast<ThreadBuffer*>(it->second.get());
  }
  auto buf = std::make_shared<ThreadBuffer>();
  {
    std::lock_guard lock(mu_);
    buf->tid = next_tid_++;
    buffers_.push_back(buf);
  }
  map.emplace(tracer_id_, buf);
  return *buf;
}

void Tracer::record(const char* name, const char* category,
                    std::uint64_t ts_us, std::uint64_t dur_us) {
  // relaxed loads/RMWs: recorded_/dropped_ are statistics; the capacity
  // check is advisory (a burst may land a few events past the cap, which
  // only trades a handful of drops — no correctness impact).
  if (recorded_.load(std::memory_order_relaxed) >=
      capacity_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  ThreadBuffer& buf = local_buffer();
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = buf.tid;
  std::lock_guard lock(buf.mu);
  buf.events.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    std::lock_guard lock(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  std::lock_guard lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard buf_lock(buf->mu);
    buf->events.clear();
  }
  // relaxed: statistics reset; see record().
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceEvent> evs = events();
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : evs) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
        << json_escape(ev.category) << "\",\"ph\":\"X\",\"ts\":" << ev.ts_us
        << ",\"dur\":" << ev.dur_us << ",\"pid\":1,\"tid\":" << ev.tid << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace oda::obs
