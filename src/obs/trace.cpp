#include "obs/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "obs/recorder.hpp"

namespace oda::obs {

namespace detail {

// Recorder bit set at static-init time: the flight recorder is always-on by
// default (obs/recorder.hpp) even before its global instance is touched.
std::atomic<unsigned> g_trace_mode{kTraceModeRecorder};

void finish_span(const char* name, const char* category,
                 std::uint64_t start_us, TraceContext ctx,
                 std::uint64_t parent_span_id, unsigned mode) {
  Tracer& tracer = Tracer::global();
  const std::uint64_t dur_us = tracer.now_us() - start_us;
  if ((mode & kTraceModeTracer) != 0) {
    tracer.record(name, category, start_us, dur_us, TraceEventKind::kSpan,
                  ctx.trace_id, ctx.span_id, parent_span_id);
  }
  if ((mode & kTraceModeRecorder) != 0) {
    FlightRecorder::global().record(name, category, start_us, dur_us,
                                    TraceEventKind::kSpan, ctx.trace_id,
                                    ctx.span_id, parent_span_id);
  }
}

void emit_instant(const char* name, const char* category, unsigned mode) {
  Tracer& tracer = Tracer::global();
  const std::uint64_t ts_us = tracer.now_us();
  const TraceContext ctx = current_trace_context();
  // Instants get their own id but never become parents (they are not
  // installed into the thread context) — parents are always spans.
  const std::uint64_t span_id = next_trace_id();
  if ((mode & kTraceModeTracer) != 0) {
    tracer.record(name, category, ts_us, 0, TraceEventKind::kInstant,
                  ctx.trace_id, span_id, ctx.span_id);
  }
  if ((mode & kTraceModeRecorder) != 0) {
    FlightRecorder::global().record(name, category, ts_us, 0,
                                    TraceEventKind::kInstant, ctx.trace_id,
                                    span_id, ctx.span_id);
  }
}

}  // namespace detail

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

/// Per-thread registration: maps tracer id -> this thread's buffer in that
/// tracer. Keyed by id (not pointer) so a destroyed tracer's address being
/// reused can never alias a stale entry. The tracer holds its own shared_ptr
/// to every buffer, so events survive thread exit until drained.
std::map<std::uint64_t, std::shared_ptr<void>>& thread_buffer_map() {
  thread_local std::map<std::uint64_t, std::shared_ptr<void>> map;
  return map;
}

std::string json_escape(const std::string& s) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += hex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string trace_id_hex(std::uint64_t id) {
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[id & 0xf];
    id >>= 4;
  }
  return out;
}

Tracer::Tracer()
    // relaxed: the id only needs uniqueness, not ordering.
    : tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool enabled) {
  // relaxed: see enabled() — an independent flag.
  enabled_.store(enabled, std::memory_order_relaxed);
  if (this == &global()) {
    // Mirror the flag into the shared sink mask the span macros read.
    // relaxed RMW: same advisory on/off semantics as the flag itself.
    auto& mode = detail::g_trace_mode;
    if (enabled) {
      mode.fetch_or(detail::kTraceModeTracer, std::memory_order_relaxed);
    } else {
      mode.fetch_and(~detail::kTraceModeTracer, std::memory_order_relaxed);
    }
  }
}

void Tracer::set_capacity(std::size_t max_events) {
  // relaxed: the cap is advisory; record() may overshoot by in-flight spans.
  capacity_.store(max_events, std::memory_order_relaxed);
}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  auto& map = thread_buffer_map();
  const auto it = map.find(tracer_id_);
  if (it != map.end()) {
    return *static_cast<ThreadBuffer*>(it->second.get());
  }
  auto buf = std::make_shared<ThreadBuffer>();
  {
    MutexLock lock(mu_);
    buf->tid = next_tid_++;
    buffers_.push_back(buf);
  }
  map.emplace(tracer_id_, buf);
  return *buf;
}

void Tracer::record(const char* name, const char* category,
                    std::uint64_t ts_us, std::uint64_t dur_us,
                    TraceEventKind kind, std::uint64_t trace_id,
                    std::uint64_t span_id, std::uint64_t parent_id) {
  // relaxed loads/RMWs: recorded_/dropped_ are statistics; the capacity
  // check is advisory (a burst may land a few events past the cap, which
  // only trades a handful of drops — no correctness impact).
  if (recorded_.load(std::memory_order_relaxed) >=
      capacity_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  ThreadBuffer& buf = local_buffer();
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = buf.tid;
  ev.kind = kind;
  ev.trace_id = trace_id;
  ev.span_id = span_id;
  ev.parent_id = parent_id;
  MutexLock lock(buf.mu);
  buf.events.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    MutexLock lock(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  MutexLock lock(mu_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void Tracer::clear() {
  MutexLock lock(mu_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mu);
    buf->events.clear();
  }
  // relaxed: statistics reset; see record().
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::to_chrome_json() const { return chrome_trace_json(events()); }

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  // span id -> event index, for flow binding and parent lookups.
  std::unordered_map<std::uint64_t, std::size_t> by_span;
  by_span.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == TraceEventKind::kSpan && events[i].span_id != 0) {
      by_span.emplace(events[i].span_id, i);
    }
  }
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit_ids = [&out](const TraceEvent& ev) {
    out << ",\"args\":{\"trace_id\":\"" << trace_id_hex(ev.trace_id)
        << "\",\"span_id\":\"" << trace_id_hex(ev.span_id)
        << "\",\"parent_id\":\"" << trace_id_hex(ev.parent_id) << "\"}";
  };
  for (const auto& ev : events) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
        << json_escape(ev.category) << "\"";
    if (ev.kind == TraceEventKind::kSpan) {
      out << ",\"ph\":\"X\",\"ts\":" << ev.ts_us << ",\"dur\":" << ev.dur_us;
    } else {
      out << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ev.ts_us;
    }
    out << ",\"pid\":1,\"tid\":" << ev.tid;
    if (ev.trace_id != 0) emit_ids(ev);
    out << '}';
  }
  // Flow pairs for every cross-thread parent->child edge: the "s" end sits
  // inside the parent slice (ts clamped into it), the "f" end on the child.
  for (const auto& ev : events) {
    if (ev.parent_id == 0 || ev.span_id == 0) continue;
    const auto it = by_span.find(ev.parent_id);
    if (it == by_span.end()) continue;
    const TraceEvent& parent = events[it->second];
    if (parent.tid == ev.tid) continue;  // same-thread nesting needs no arrow
    const std::uint64_t s_ts =
        std::clamp(ev.ts_us, parent.ts_us, parent.ts_us + parent.dur_us);
    out << ",{\"name\":\"trace\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":\""
        << trace_id_hex(ev.span_id) << "\",\"ts\":" << s_ts
        << ",\"pid\":1,\"tid\":" << parent.tid << '}'
        << ",{\"name\":\"trace\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
           "\"id\":\""
        << trace_id_hex(ev.span_id) << "\",\"ts\":" << ev.ts_us
        << ",\"pid\":1,\"tid\":" << ev.tid << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace oda::obs
