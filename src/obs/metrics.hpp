// Self-instrumentation metrics: the ODA stack observing itself.
//
// A MetricsRegistry holds named counters, gauges, and fixed-bucket
// histograms following the Prometheus data model (metric family + label
// set -> one series). Registration takes a mutex; the returned instrument
// reference is stable for the registry's lifetime and its hot-path
// operations (inc / set / observe) are lock-free atomics, so instrumented
// code pays a few relaxed atomic RMWs per event and nothing more.
//
// Naming convention (docs/OBSERVABILITY.md): oda_<layer>_<name>_<unit>,
// e.g. oda_bus_publish_seconds, oda_store_inserts_total.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.hpp"

namespace oda::obs {

/// Label key/value pairs identifying one series within a metric family.
/// Registration sorts them by key, so order does not matter to callers.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* to_string(MetricType type);

/// Monotonically increasing event count.
class Counter {
 public:
  // relaxed (all accesses): counters are standalone monotonic statistics;
  // they publish no other data and order nothing, so readers only need an
  // eventually-current value.
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written measurement (queue depth, resident bytes, ...).
class Gauge {
 public:
  // relaxed (all accesses): a gauge is an independent last-writer-wins
  // sample; no inter-thread ordering is implied by reading it.
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus semantics: per-bucket counts are
/// exported cumulatively; internally each atomic holds its own bucket only).
class Histogram {
 public:
  /// `bounds` are ascending inclusive upper bounds; an implicit +Inf bucket
  /// is appended.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  /// Exemplar (OpenMetrics): the trace id of the most recent extreme
  /// observation — the running-max value seen while a trace context was
  /// active on the observing thread. trace_id == 0 means none yet. The
  /// (value, trace_id) pair is read without a lock, so under concurrent
  /// extremes it may mix two observations; both fields are still valid
  /// exemplars of the series, so the link stays useful.
  struct Exemplar {
    double value = 0.0;
    std::uint64_t trace_id = 0;
  };
  Exemplar exemplar() const noexcept {
    // relaxed (both): debugging breadcrumb, no ordering obligations.
    return {exemplar_value_.load(std::memory_order_relaxed),
            exemplar_trace_id_.load(std::memory_order_relaxed)};
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size == bounds().size() + 1.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept {
    // relaxed: see Counter — statistics only.
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept {
    // relaxed: see Counter — statistics only.
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
  // -inf start so the first traced observation always becomes the exemplar.
  std::atomic<double> exemplar_value_{
      -std::numeric_limits<double>::infinity()};
  std::atomic<std::uint64_t> exemplar_trace_id_{0};
};

/// Default latency buckets: 1us .. ~65s, doubling.
std::vector<double> default_latency_bounds();
/// `count` bounds starting at `start`, each `factor` times the previous.
std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count);

// ---------------------------------------------------------------- snapshot

/// One exported series of a counter or gauge family.
struct SeriesValue {
  LabelSet labels;
  double value = 0.0;
};

/// One exported histogram series.
struct HistogramValue {
  LabelSet labels;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // non-cumulative, bounds.size() + 1
  double sum = 0.0;
  std::uint64_t count = 0;
  // OpenMetrics exemplar (see Histogram::exemplar); trace_id 0 = none.
  double exemplar_value = 0.0;
  std::uint64_t exemplar_trace_id = 0;
};

struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<SeriesValue> values;          // counter/gauge families
  std::vector<HistogramValue> histograms;   // histogram families
};

/// Point-in-time histogram state returned by a histogram callback (pull
/// model). `counts` are per-bucket (non-cumulative) and must have exactly
/// bounds.size() + 1 entries (the last is the +Inf bucket). The exported
/// _count is derived from the bucket sum, not taken from `count`, so the
/// +Inf cumulative bucket always equals _count even when the callback reads
/// concurrently-updated atomics.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1
  double sum = 0.0;
};

/// A point-in-time copy of every registered series. Individual series are
/// read atomically but the snapshot as a whole is not a consistent cut —
/// standard scrape semantics.
struct MetricsSnapshot {
  std::vector<MetricFamily> families;

  const MetricFamily* find(const std::string& name) const;
  /// Sum of every series value in a counter/gauge family (0 if absent).
  double total(const std::string& name) const;
};

// ---------------------------------------------------------------- registry

/// Unregisters a callback series when destroyed. The registry must outlive
/// the handle (trivially true for MetricsRegistry::global()).
class CallbackHandle {
 public:
  CallbackHandle() = default;
  CallbackHandle(CallbackHandle&& other) noexcept;
  CallbackHandle& operator=(CallbackHandle&& other) noexcept;
  CallbackHandle(const CallbackHandle&) = delete;
  CallbackHandle& operator=(const CallbackHandle&) = delete;
  ~CallbackHandle();

  void release();  // unregister now

 private:
  friend class MetricsRegistry;
  CallbackHandle(class MetricsRegistry* registry, std::uint64_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation point uses.
  static MetricsRegistry& global();

  /// Returns the instrument for (name, labels), creating it on first use.
  /// Re-registration with the same name+labels returns the same instrument;
  /// re-registration of a name with a different type throws ContractError.
  Counter& counter(const std::string& name, const std::string& help,
                   const LabelSet& labels = {}) ODA_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name, const std::string& help,
               const LabelSet& labels = {}) ODA_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, const LabelSet& labels = {})
      ODA_EXCLUDES(mu_);
  /// Histogram with default_latency_bounds() — the common latency case.
  Histogram& histogram(const std::string& name, const std::string& help,
                       const LabelSet& labels = {}) ODA_EXCLUDES(mu_);

  /// Registers a series whose value is computed at snapshot time (pull
  /// model — e.g. a queue depth read from the queue itself). The callback
  /// must not call back into this registry. Dropped when the returned
  /// handle is destroyed.
  [[nodiscard]] CallbackHandle gauge_callback(const std::string& name,
                                              const std::string& help,
                                              const LabelSet& labels,
                                              std::function<double()> fn);
  [[nodiscard]] CallbackHandle counter_callback(const std::string& name,
                                                const std::string& help,
                                                const LabelSet& labels,
                                                std::function<double()> fn);
  /// Histogram variant: the callback returns the full bucket state each
  /// scrape (e.g. the lock-contention table in common/contention.hpp, whose
  /// atomics live outside the registry). Same re-registration and
  /// no-reentrancy rules as the scalar callbacks.
  [[nodiscard]] CallbackHandle histogram_callback(
      const std::string& name, const std::string& help, const LabelSet& labels,
      std::function<HistogramSnapshot()> fn);

  MetricsSnapshot snapshot() const ODA_EXCLUDES(mu_);

  std::size_t family_count() const ODA_EXCLUDES(mu_);

 private:
  struct Instrument {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    std::map<std::string, Instrument> series;  // key: serialized labels
  };
  struct CallbackSeries {
    std::uint64_t id = 0;
    std::string name;
    std::string help;
    MetricType type = MetricType::kGauge;
    LabelSet labels;
    std::function<double()> fn;                    // counter/gauge callbacks
    std::function<HistogramSnapshot()> hist_fn;    // histogram callbacks
  };

  friend class CallbackHandle;
  void remove_callback(std::uint64_t id) ODA_EXCLUDES(mu_);
  Family& family_locked(const std::string& name, const std::string& help,
                        MetricType type) ODA_REQUIRES(mu_);
  CallbackHandle add_callback(const std::string& name, const std::string& help,
                              MetricType type, const LabelSet& labels,
                              std::function<double()> fn) ODA_EXCLUDES(mu_);

  /// Registration-path lock only (instrument hot paths are lock-free
  /// atomics). Held while snapshot() runs pull callbacks, which therefore
  /// must not re-enter the registry — but may log or trace (both rank
  /// below metrics).
  mutable Mutex mu_ ODA_ACQUIRED_AFTER(lock_order::metrics)
      ODA_ACQUIRED_BEFORE(lock_order::trace){LockRankId::kMetrics};
  std::map<std::string, Family> families_ ODA_GUARDED_BY(mu_);
  std::vector<CallbackSeries> callbacks_ ODA_GUARDED_BY(mu_);
  std::uint64_t next_callback_id_ ODA_GUARDED_BY(mu_) = 1;
};

/// Validates a metric name ([a-zA-Z_:][a-zA-Z0-9_:]*); throws ContractError.
void validate_metric_name(const std::string& name);
/// Validates a label name ([a-zA-Z_][a-zA-Z0-9_]*); throws ContractError.
void validate_label_name(const std::string& name);

}  // namespace oda::obs
