// Pipeline health: turns a MetricsSnapshot into an operator-facing report —
// per-check verdicts (drops, slow subscribers, rejected tasks, trace
// buffer overflow), a rendered table of every metric family, and the 4x4
// grid cost view built from the CellScope series. Also hosts the pull-model
// registration helpers that connect common/ concurrency primitives (which
// obs cannot be a dependency of) to the registry via callback gauges.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/spsc_queue.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace oda::obs {

struct HealthCheck {
  std::string name;     // e.g. "bus.slow_subscribers"
  bool ok = true;
  std::string detail;   // human-readable evidence either way
};

struct PipelineHealthReport {
  std::vector<HealthCheck> checks;

  bool healthy() const;
  /// "PIPELINE HEALTH" TextTable (check | status | detail).
  std::string render() const;
};

/// Evaluates the standard health checks against a snapshot. Checks degrade
/// gracefully: a check whose metrics are absent reports ok with "(no data)".
/// Resilience checks added for the failure-aware collector: open circuit
/// breakers, quarantined sensors, and collection-gap *growth* (the gap
/// check is edge-triggered per process — it compares against the total seen
/// by the previous assessment, so a historical count alone stays healthy).
/// On the healthy -> unhealthy edge the global FlightRecorder is dumped to
/// its configured dump path (postmortem capture; no-op without a path).
PipelineHealthReport assess_pipeline_health(const MetricsSnapshot& snapshot);

/// Renders every family as a table: counters/gauges with their summed
/// value, histograms with count / mean / max-bucket.
std::string render_metrics_table(const MetricsSnapshot& snapshot);

/// Renders the 4x4 grid of oda_analytics_run_seconds as "runs @ mean-ms"
/// per (type row, pillar column) — the live cost-per-cell view.
std::string render_cell_costs(const MetricsSnapshot& snapshot);

/// Keeps a set of callback registrations alive; dropping it unregisters
/// them (safe teardown before the instrumented object dies).
struct InstrumentationHandles {
  std::vector<CallbackHandle> handles;
};

/// Exports a ThreadPool's queue depth, task counters, and scheduler
/// attribution:
///   oda_pool_pending_tasks{pool=}, oda_pool_threads{pool=},
///   oda_pool_workers_parked{pool=},
///   oda_pool_submitted_total{pool=}, oda_pool_completed_total{pool=},
///   oda_pool_rejected_total{pool=},
///   oda_pool_task_queue_wait_seconds{pool=} (histogram),
///   oda_pool_task_run_seconds{pool=} (histogram).
/// Takes the pool by mutable reference because it installs the per-task
/// timing hook (ThreadPool::set_task_timing_hook) that feeds the two
/// histograms — so call it during setup, before work is submitted. No
/// steal counters are exported: the pool uses a single shared queue, so
/// queue-wait already captures all scheduling delay.
InstrumentationHandles register_thread_pool(MetricsRegistry& registry,
                                            ThreadPool& pool,
                                            const std::string& pool_label);

/// Exports the process-wide lock contention table (common/contention.hpp):
///   oda_lock_wait_seconds{rank=} (histogram of blocking-acquire waits),
///   oda_lock_contended_total{rank=} (contended acquisitions).
/// One series per lock_order rank (including "unranked"), registered
/// eagerly so dashboards see explicit zeros. The sole home of store shard
/// lock-wait attribution (the old per-shard gauge alias is gone).
InstrumentationHandles register_lock_contention(MetricsRegistry& registry);

/// Exports sampling-profiler meta-statistics (obs/profiler.hpp):
///   oda_profiler_samples_total{profiler=}, oda_profiler_truncated_total
///   {profiler=}, oda_profiler_threads_watched{profiler=}.
InstrumentationHandles register_profiler(MetricsRegistry& registry,
                                         const class SamplingProfiler& profiler,
                                         const std::string& profiler_label);

/// Exports tracer buffer pressure:
///   oda_trace_events{tracer=}, oda_trace_dropped_total{tracer=}.
InstrumentationHandles register_tracer(MetricsRegistry& registry,
                                       const Tracer& tracer,
                                       const std::string& tracer_label);

/// Exports flight-recorder occupancy and dump counters:
///   oda_flight_events{recorder=}, oda_flight_recorded_total{recorder=},
///   oda_flight_dumps_total{recorder=}.
InstrumentationHandles register_flight_recorder(
    MetricsRegistry& registry, const FlightRecorder& recorder,
    const std::string& recorder_label);

/// Exports an SpscQueue's depth gauge and reject counter:
///   oda_queue_depth{queue=}, oda_queue_rejected_total{queue=}.
template <typename T>
InstrumentationHandles register_spsc_queue(MetricsRegistry& registry,
                                           const SpscQueue<T>& queue,
                                           const std::string& queue_label) {
  InstrumentationHandles out;
  out.handles.push_back(registry.gauge_callback(
      "oda_queue_depth", "Items currently queued",
      {{"queue", queue_label}, {"kind", "spsc"}},
      [&queue] { return static_cast<double>(queue.size_approx()); }));
  out.handles.push_back(registry.counter_callback(
      "oda_queue_rejected_total", "Pushes rejected because the queue was full",
      {{"queue", queue_label}, {"kind", "spsc"}},
      [&queue] { return static_cast<double>(queue.rejected_count()); }));
  return out;
}

/// Exports a BlockingQueue's depth gauge and reject counter:
///   oda_queue_depth{queue=}, oda_queue_rejected_total{queue=}.
template <typename T>
InstrumentationHandles register_blocking_queue(MetricsRegistry& registry,
                                               const BlockingQueue<T>& queue,
                                               const std::string& queue_label) {
  InstrumentationHandles out;
  out.handles.push_back(registry.gauge_callback(
      "oda_queue_depth", "Items currently queued",
      {{"queue", queue_label}, {"kind", "blocking"}},
      [&queue] { return static_cast<double>(queue.size()); }));
  out.handles.push_back(registry.counter_callback(
      "oda_queue_rejected_total", "Pushes rejected because the queue was full",
      {{"queue", queue_label}, {"kind", "blocking"}},
      [&queue] { return static_cast<double>(queue.rejected_count()); }));
  return out;
}

}  // namespace oda::obs
