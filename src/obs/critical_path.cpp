#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace oda::obs {

namespace {

/// Cap on tree depth during the walk: a well-formed trace is a few levels
/// deep; anything deeper means corrupt parent ids (or a cycle dodged by
/// the in-stack check) and is treated as a leaf.
constexpr std::size_t kMaxDepth = 512;

struct Node {
  const TraceEvent* ev = nullptr;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::vector<std::size_t> children;  // sorted: end desc, start desc, id asc
  bool on_stack = false;
};

struct Walker {
  std::vector<Node>& nodes;
  // Per-name aggregation (std::map: deterministic iteration for `top`
  // tie-breaking and rendering).
  std::map<std::string, SpanAgg>& agg;
  std::uint64_t total_busy = 0;
  std::size_t span_count = 0;

  /// Attributes the window [wlo, whi) of `node` to critical-path segments:
  /// scanning from the window's end backwards, each slice belongs to the
  /// latest-ending child covering it, recursively; uncovered slices are
  /// the node's own critical-path self time. Returns the attributed total
  /// (== whi - wlo for a span covering its window).
  std::uint64_t walk(std::size_t idx, std::uint64_t wlo, std::uint64_t whi,
                     std::size_t depth) {
    Node& node = nodes[idx];
    const std::uint64_t lo = std::max(node.start, wlo);
    const std::uint64_t hi = std::min(node.end, whi);
    if (hi <= lo) return 0;
    SpanAgg& a = agg[node.ev->name];
    if (a.name.empty()) a.name = node.ev->name;
    if (depth >= kMaxDepth) {
      a.cp_us += hi - lo;
      return hi - lo;
    }
    node.on_stack = true;
    std::uint64_t frontier = hi;
    std::uint64_t cp = 0;
    for (const std::size_t child_idx : node.children) {
      const Node& child = nodes[child_idx];
      if (child.on_stack) continue;  // corrupt parent chain (cycle)
      const std::uint64_t child_end = std::min(child.end, frontier);
      if (child_end <= lo || child.start >= frontier) continue;
      if (frontier > child_end) {
        // Slice (child_end, frontier]: no later-ending child covers it —
        // the node itself is on the critical path here.
        a.cp_us += frontier - child_end;
        cp += frontier - child_end;
      }
      cp += walk(child_idx, lo, child_end, depth + 1);
      frontier = std::max(child.start, lo);
      if (frontier <= lo) break;
    }
    if (frontier > lo) {
      a.cp_us += frontier - lo;
      cp += frontier - lo;
    }
    node.on_stack = false;
    return cp;
  }

  /// Accumulates per-span busy (self) time: duration minus the union of
  /// child intervals clamped to the span. Also counts spans in the tree.
  void accumulate_self(std::size_t idx, std::size_t depth) {
    Node& node = nodes[idx];
    if (node.on_stack || depth >= kMaxDepth) return;
    node.on_stack = true;
    ++span_count;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ivals;
    ivals.reserve(node.children.size());
    for (const std::size_t child_idx : node.children) {
      const Node& child = nodes[child_idx];
      const std::uint64_t s = std::max(child.start, node.start);
      const std::uint64_t e = std::min(child.end, node.end);
      if (e > s) ivals.emplace_back(s, e);
      accumulate_self(child_idx, depth + 1);
    }
    std::sort(ivals.begin(), ivals.end());
    std::uint64_t covered = 0;
    std::uint64_t cursor = node.start;
    for (const auto& [s, e] : ivals) {
      const std::uint64_t from = std::max(s, cursor);
      if (e > from) {
        covered += e - from;
        cursor = e;
      }
    }
    const std::uint64_t dur = node.end - node.start;
    const std::uint64_t self = dur - std::min(covered, dur);
    SpanAgg& a = agg[node.ev->name];
    if (a.name.empty()) a.name = node.ev->name;
    a.count += 1;
    a.self_us += self;
    total_busy += self;
    node.on_stack = false;
  }
};

}  // namespace

std::vector<CriticalPathReport> analyze_critical_path(
    const std::vector<TraceEvent>& events, std::size_t top_n) {
  // Group span events by trace id, preserving deterministic trace order.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> traces;
  for (const TraceEvent& ev : events) {
    if (ev.kind != TraceEventKind::kSpan || ev.trace_id == 0) continue;
    traces[ev.trace_id].push_back(&ev);
  }

  std::vector<CriticalPathReport> reports;
  for (auto& [trace_id, spans] : traces) {
    // Stable node order: by span id (unique per span; duplicates — which a
    // well-formed tracer never emits — keep the first occurrence).
    std::sort(spans.begin(), spans.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->span_id != b->span_id) return a->span_id < b->span_id;
                return a->ts_us < b->ts_us;
              });
    std::vector<Node> nodes;
    nodes.reserve(spans.size());
    std::unordered_map<std::uint64_t, std::size_t> by_id;
    by_id.reserve(spans.size());
    for (const TraceEvent* ev : spans) {
      if (by_id.count(ev->span_id) != 0) continue;
      Node node;
      node.ev = ev;
      node.start = ev->ts_us;
      node.end = ev->ts_us + ev->dur_us;
      by_id.emplace(ev->span_id, nodes.size());
      nodes.push_back(std::move(node));
    }
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const TraceEvent* ev = nodes[i].ev;
      const auto parent = by_id.find(ev->parent_id);
      if (ev->parent_id == 0 || parent == by_id.end() ||
          parent->second == i) {
        roots.push_back(i);
      } else {
        nodes[parent->second].children.push_back(i);
      }
    }
    for (Node& node : nodes) {
      std::sort(node.children.begin(), node.children.end(),
                [&nodes](std::size_t a, std::size_t b) {
                  const Node& na = nodes[a];
                  const Node& nb = nodes[b];
                  if (na.end != nb.end) return na.end > nb.end;
                  if (na.start != nb.start) return na.start > nb.start;
                  return na.ev->span_id < nb.ev->span_id;
                });
    }

    for (const std::size_t root : roots) {
      std::map<std::string, SpanAgg> agg;
      Walker walker{nodes, agg};
      CriticalPathReport report;
      report.trace_id = trace_id;
      report.root_span_id = nodes[root].ev->span_id;
      report.root_name = nodes[root].ev->name;
      report.root_start_us = nodes[root].start;
      report.root_dur_us = nodes[root].end - nodes[root].start;
      report.critical_path_us =
          walker.walk(root, nodes[root].start, nodes[root].end, 0);
      walker.accumulate_self(root, 0);
      report.total_busy_us = walker.total_busy;
      report.span_count = walker.span_count;
      report.parallelism =
          report.root_dur_us == 0
              ? 0.0
              : static_cast<double>(report.total_busy_us) /
                    static_cast<double>(report.root_dur_us);
      report.top.reserve(agg.size());
      for (auto& [name, a] : agg) report.top.push_back(std::move(a));
      std::sort(report.top.begin(), report.top.end(),
                [](const SpanAgg& a, const SpanAgg& b) {
                  if (a.cp_us != b.cp_us) return a.cp_us > b.cp_us;
                  if (a.self_us != b.self_us) return a.self_us > b.self_us;
                  return a.name < b.name;
                });
      if (report.top.size() > top_n) report.top.resize(top_n);
      reports.push_back(std::move(report));
    }
  }
  std::sort(reports.begin(), reports.end(),
            [](const CriticalPathReport& a, const CriticalPathReport& b) {
              if (a.root_dur_us != b.root_dur_us) {
                return a.root_dur_us > b.root_dur_us;
              }
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.root_span_id < b.root_span_id;
            });
  return reports;
}

std::string render_critical_path(
    const std::vector<CriticalPathReport>& reports) {
  std::string out;
  char line[256];
  for (const CriticalPathReport& r : reports) {
    std::snprintf(line, sizeof(line),
                  "trace %s root '%s' dur %.3f ms critical_path %.3f ms "
                  "busy %.3f ms parallelism %.2f spans %zu\n",
                  trace_id_hex(r.trace_id).c_str(), r.root_name.c_str(),
                  r.root_dur_us / 1000.0, r.critical_path_us / 1000.0,
                  r.total_busy_us / 1000.0, r.parallelism, r.span_count);
    out += line;
    for (const SpanAgg& a : r.top) {
      std::snprintf(line, sizeof(line),
                    "  %-32s count %6llu self %10.3f ms on-path %10.3f ms\n",
                    a.name.c_str(), static_cast<unsigned long long>(a.count),
                    a.self_us / 1000.0, a.cp_us / 1000.0);
      out += line;
    }
  }
  if (out.empty()) out = "no traced spans\n";
  return out;
}

}  // namespace oda::obs
