// Per-grid-cell cost accounting: every instrumented analytics entry point
// opens a CellScope naming its (pillar, type) cell and capability id, which
// feeds
//   oda_analytics_runs_total{pillar=,type=,capability=}   (counter)
//   oda_analytics_run_seconds{pillar=,type=}              (histogram)
// so the 4x4 framework grid gets a live cost-per-cell view (the DCDB
// Wintermute "plugin overhead accounting" idea applied to our own engines),
// plus a trace span in the "analytics" category.
//
// Pillar/type strings follow core::to_string() spelling
// ("building-infrastructure", "system-hardware", "system-software",
// "applications" x "descriptive", "diagnostic", "predictive",
// "prescriptive"); plain strings keep obs independent of core (which links
// against the analytics libraries this header instruments).
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oda::obs {

class CellScope {
 public:
  /// All three arguments must be string literals (or otherwise outlive the
  /// scope): they become metric label values and the trace span name.
  CellScope(const char* pillar, const char* type, const char* capability);
  CellScope(const CellScope&) = delete;
  CellScope& operator=(const CellScope&) = delete;
  ~CellScope();

 private:
  Counter& runs_;
  Histogram& seconds_;
  // The span joins the thread's active trace (bus delivery, collect pass)
  // so analytics cells appear as children in the causal tree. Declared
  // before start_us_ so ~CellScope's observe() runs while the span — and
  // therefore the trace context feeding histogram exemplars — is still open.
  TraceSpan span_;
  std::uint64_t start_us_;
};

}  // namespace oda::obs
