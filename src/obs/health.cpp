#include "obs/health.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>

#include "common/contention.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"

namespace oda::obs {

namespace {

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

std::string label_suffix(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=" + v;
  }
  out += '}';
  return out;
}

const std::string* label_value(const LabelSet& labels, const std::string& key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// Sums the series of `family` whose label set contains key == value.
/// Returns -1.0 when the family is absent entirely (degrade to "(no data)").
double labelled_total(const MetricsSnapshot& snap, const std::string& family,
                      const std::string& key, const std::string& value) {
  const MetricFamily* fam = snap.find(family);
  if (fam == nullptr) return -1.0;
  double total = 0.0;
  for (const auto& v : fam->values) {
    const std::string* got = label_value(v.labels, key);
    if (got != nullptr && *got == value) total += v.value;
  }
  return total;
}

HealthCheck zero_is_healthy(const MetricsSnapshot& snap,
                            const std::string& check_name,
                            const std::string& family,
                            const std::string& what) {
  HealthCheck check;
  check.name = check_name;
  if (snap.find(family) == nullptr) {
    check.ok = true;
    check.detail = "(no data)";
    return check;
  }
  const double total = snap.total(family);
  check.ok = total == 0.0;
  check.detail = fmt("%.0f ", total) + what;
  return check;
}

}  // namespace

bool PipelineHealthReport::healthy() const {
  return std::all_of(checks.begin(), checks.end(),
                     [](const HealthCheck& c) { return c.ok; });
}

std::string PipelineHealthReport::render() const {
  TextTable table({"check", "status", "detail"});
  table.set_title("PIPELINE HEALTH");
  table.set_max_width(2, 48);
  for (const auto& c : checks) {
    table.add_row({c.name, c.ok ? "ok" : "DEGRADED", c.detail});
  }
  return table.render();
}

PipelineHealthReport assess_pipeline_health(const MetricsSnapshot& snap) {
  PipelineHealthReport report;
  report.checks.push_back(zero_is_healthy(
      snap, "bus.slow_subscribers", "oda_bus_slow_deliveries_total",
      "deliveries above the bus slow-subscriber threshold"));
  report.checks.push_back(zero_is_healthy(
      snap, "pool.rejected", "oda_pool_rejected_total",
      "tasks rejected by a shut-down pool (ran inline)"));
  report.checks.push_back(zero_is_healthy(
      snap, "queue.rejects", "oda_queue_rejected_total",
      "pushes rejected by a full queue"));
  report.checks.push_back(zero_is_healthy(
      snap, "trace.drops", "oda_trace_dropped_total",
      "spans dropped by a full trace buffer"));

  {
    HealthCheck check;
    check.name = "collector.pace";
    const MetricFamily* fam = snap.find("oda_collector_pass_seconds");
    if (fam == nullptr || fam->histograms.empty() ||
        fam->histograms.front().count == 0) {
      check.ok = true;
      check.detail = "(no data)";
    } else {
      const HistogramValue& h = fam->histograms.front();
      const double mean = h.sum / static_cast<double>(h.count);
      // A collector pass that averages over a second cannot keep up with
      // any realistic sampling period; flag it.
      check.ok = mean < 1.0;
      check.detail = fmt("%.2f ms ", mean * 1e3) +
                     fmt("mean pass over %.0f passes", static_cast<double>(h.count));
    }
    report.checks.push_back(std::move(check));
  }

  {
    // Open circuit breakers mean sensors are actively being skipped
    // (docs/RESILIENCE.md); any nonzero count degrades the pipeline.
    HealthCheck check;
    check.name = "collector.breakers";
    const MetricFamily* fam = snap.find("oda_collector_breakers_open");
    if (fam == nullptr || fam->values.empty()) {
      check.ok = true;
      check.detail = "(no data)";
    } else {
      const double open = snap.total("oda_collector_breakers_open");
      check.ok = open == 0.0;
      check.detail = fmt("%.0f sensors behind an open breaker", open);
    }
    report.checks.push_back(std::move(check));
  }

  {
    // Quarantined sensors are excluded from analytics; surface how many.
    HealthCheck check;
    check.name = "sensors.quarantined";
    const double quarantined =
        labelled_total(snap, "oda_health_sensors", "state", "quarantined");
    if (quarantined < 0.0) {
      check.ok = true;
      check.detail = "(no data)";
    } else {
      check.ok = quarantined == 0.0;
      check.detail = fmt("%.0f sensors quarantined", quarantined);
    }
    report.checks.push_back(std::move(check));
  }

  {
    // Collection gaps growing between two assessments mean reads are being
    // lost *right now* — a steady historical count is fine, growth is not.
    // Edge-triggered per process: the baseline is the total seen by the
    // previous assess_pipeline_health call (first call baselines at 0).
    HealthCheck check;
    check.name = "collector.gaps";
    const MetricFamily* fam = snap.find("oda_collector_gaps_total");
    if (fam == nullptr) {
      check.ok = true;
      check.detail = "(no data)";
    } else {
      static std::atomic<double> baseline{0.0};
      const double total = snap.total("oda_collector_gaps_total");
      // relaxed: a per-process breadcrumb for the next assessment; no
      // ordering with any other memory is needed.
      const double prev = baseline.exchange(total, std::memory_order_relaxed);
      const double growth = total - prev;
      check.ok = growth <= 0.0;
      check.detail = fmt("%.0f new gaps since last assessment ", growth) +
                     fmt("(%.0f lifetime)", total);
    }
    report.checks.push_back(std::move(check));
  }

  {
    // WAL degradation is level-triggered: once the durable tier fell back
    // to in-memory-only mode (ENOSPC, torn write, fsync failure) it stays
    // degraded until restart, and so does this check. Absent family means
    // no WAL is attached — healthy by construction.
    HealthCheck check;
    check.name = "wal.degraded";
    const MetricFamily* fam = snap.find("oda_wal_degraded");
    if (fam == nullptr || fam->values.empty()) {
      check.ok = true;
      check.detail = "(no data)";
    } else {
      const double degraded = snap.total("oda_wal_degraded");
      check.ok = degraded == 0.0;
      check.detail = degraded == 0.0
                         ? "durable tier healthy"
                         : "WAL degraded to in-memory-only mode (samples "
                           "since the fault are not durable)";
    }
    report.checks.push_back(std::move(check));
  }

  {
    // Informational: recovery truncation is the mechanism *working* (the
    // torn tail was cut and accounted), so it never degrades health — but
    // an operator should see that a crash left bytes behind.
    HealthCheck check;
    check.name = "wal.replay";
    const MetricFamily* replayed = snap.find("oda_wal_replayed_samples_total");
    if (replayed == nullptr) {
      check.ok = true;
      check.detail = "(no data)";
    } else {
      check.ok = true;
      check.detail =
          fmt("%.0f samples replayed, ",
              snap.total("oda_wal_replayed_samples_total")) +
          fmt("%.0f bytes truncated at recovery",
              snap.total("oda_wal_truncated_bytes_total"));
    }
    report.checks.push_back(std::move(check));
  }

  {
    HealthCheck check;
    check.name = "store.memory";
    const MetricFamily* fam = snap.find("oda_store_memory_bytes");
    if (fam == nullptr || fam->values.empty()) {
      check.ok = true;
      check.detail = "(no data)";
    } else {
      check.ok = true;  // informational: bounded by ring capacity by design
      check.detail = fmt("%.1f MiB retained", snap.total("oda_store_memory_bytes") /
                                                  (1024.0 * 1024.0));
    }
    report.checks.push_back(std::move(check));
  }

  // Postmortem hook: on the healthy -> unhealthy edge, dump the flight
  // recorder so the moments leading up to the degradation are preserved
  // (no-op unless FlightRecorder::set_dump_path was called).
  static std::atomic<bool> was_unhealthy{false};
  const bool healthy_now = report.healthy();
  if (healthy_now) {
    // relaxed: the edge detector is a per-process breadcrumb, not a lock.
    was_unhealthy.store(false, std::memory_order_relaxed);
  } else if (!was_unhealthy.exchange(true, std::memory_order_relaxed)) {
    FlightRecorder& recorder = FlightRecorder::global();
    if (!recorder.dump_path().empty()) {
      ODA_LOG_WARN << "pipeline health degraded; dumping flight recorder to "
                   << recorder.dump_path();
      recorder.dump_to_file();
    }
  }
  return report;
}

std::string render_metrics_table(const MetricsSnapshot& snap) {
  TextTable table({"metric", "type", "value", "detail"});
  table.set_title("SELF-INSTRUMENTATION METRICS");
  table.set_align(2, Align::kRight);
  table.set_max_width(0, 56);
  table.set_max_width(3, 40);
  for (const auto& fam : snap.families) {
    if (fam.type == MetricType::kHistogram) {
      for (const auto& h : fam.histograms) {
        const double mean =
            h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count);
        table.add_row({fam.name + label_suffix(h.labels), "histogram",
                       fmt("%.0f", static_cast<double>(h.count)),
                       "mean " + fmt("%.3g", mean) + ", sum " +
                           fmt("%.4g", h.sum)});
      }
    } else {
      for (const auto& v : fam.values) {
        table.add_row({fam.name + label_suffix(v.labels),
                       to_string(fam.type), fmt("%.6g", v.value), ""});
      }
    }
  }
  return table.render();
}

std::string render_cell_costs(const MetricsSnapshot& snap) {
  static constexpr const char* kPillars[] = {
      "building-infrastructure", "system-hardware", "system-software",
      "applications"};
  static constexpr const char* kTypes[] = {"descriptive", "diagnostic",
                                           "predictive", "prescriptive"};
  struct Cell {
    std::uint64_t runs = 0;
    double seconds = 0.0;
  };
  std::map<std::pair<std::string, std::string>, Cell> cells;
  if (const MetricFamily* fam = snap.find("oda_analytics_run_seconds")) {
    for (const auto& h : fam->histograms) {
      const std::string* pillar = label_value(h.labels, "pillar");
      const std::string* type = label_value(h.labels, "type");
      if (pillar == nullptr || type == nullptr) continue;
      Cell& cell = cells[{*type, *pillar}];
      cell.runs += h.count;
      cell.seconds += h.sum;
    }
  }

  TextTable table({"analytics type", "building-infrastructure",
                   "system-hardware", "system-software", "applications"});
  table.set_title("ANALYTICS COST PER GRID CELL (runs @ mean ms)");
  for (const char* type : kTypes) {
    std::vector<std::string> row{type};
    for (const char* pillar : kPillars) {
      const auto it = cells.find({type, pillar});
      if (it == cells.end() || it->second.runs == 0) {
        row.push_back("-");
      } else {
        const double mean_ms =
            it->second.seconds / static_cast<double>(it->second.runs) * 1e3;
        row.push_back(fmt("%.0f", static_cast<double>(it->second.runs)) +
                      " @ " + fmt("%.2f", mean_ms));
      }
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

InstrumentationHandles register_thread_pool(MetricsRegistry& registry,
                                            ThreadPool& pool,
                                            const std::string& pool_label) {
  InstrumentationHandles out;
  const LabelSet labels = {{"pool", pool_label}};
  out.handles.push_back(registry.gauge_callback(
      "oda_pool_pending_tasks", "Tasks submitted but not yet finished", labels,
      [&pool] { return static_cast<double>(pool.pending()); }));
  out.handles.push_back(registry.gauge_callback(
      "oda_pool_threads", "Worker threads in the pool", labels,
      [&pool] { return static_cast<double>(pool.thread_count()); }));
  out.handles.push_back(registry.gauge_callback(
      "oda_pool_workers_parked",
      "Workers currently blocked waiting for a task", labels,
      [&pool] { return static_cast<double>(pool.parked_workers()); }));
  out.handles.push_back(registry.counter_callback(
      "oda_pool_submitted_total", "Tasks submitted to the pool", labels,
      [&pool] { return static_cast<double>(pool.submitted_count()); }));
  out.handles.push_back(registry.counter_callback(
      "oda_pool_completed_total", "Tasks that finished executing", labels,
      [&pool] { return static_cast<double>(pool.completed_count()); }));
  out.handles.push_back(registry.counter_callback(
      "oda_pool_rejected_total",
      "Tasks submitted after shutdown (executed inline on the submitter)",
      labels,
      [&pool] { return static_cast<double>(pool.rejected_count()); }));
  // Chunked parallel_for attribution: calls that fanned out and chunks
  // claimed. chunks/calls >> threads means the grain is finer than the
  // fan-out needs; chunks ~= calls means the loop degenerated to serial.
  out.handles.push_back(registry.counter_callback(
      "oda_pool_parallel_for_total",
      "parallel_for/parallel_for_chunks calls that fanned out to the pool",
      labels,
      [&pool] { return static_cast<double>(pool.parallel_for_calls()); }));
  out.handles.push_back(registry.counter_callback(
      "oda_pool_parallel_for_chunks_total",
      "Chunks claimed across all parallel_for calls (helpers and callers)",
      labels, [&pool] {
        return static_cast<double>(pool.parallel_for_chunks_claimed());
      }));
  // Scheduler attribution: the pool's timing hook pushes (queue-wait, run)
  // pairs into two push-model histograms. The Histogram references stay
  // valid for the registry's lifetime, so the hook may outlive `out`.
  Histogram& wait_hist = registry.histogram(
      "oda_pool_task_queue_wait_seconds",
      "Time a task spent queued before a worker picked it up", labels);
  Histogram& run_hist = registry.histogram(
      "oda_pool_task_run_seconds", "Time a task spent executing", labels);
  pool.set_task_timing_hook([&wait_hist, &run_hist](double wait_s,
                                                    double run_s) {
    wait_hist.observe(wait_s);
    run_hist.observe(run_s);
  });
  return out;
}

InstrumentationHandles register_lock_contention(MetricsRegistry& registry) {
  InstrumentationHandles out;
  for (std::size_t r = 0; r < kLockRankCount; ++r) {
    const auto rank = static_cast<LockRankId>(r);
    const LabelSet labels = {{"rank", to_string(rank)}};
    out.handles.push_back(registry.histogram_callback(
        "oda_lock_wait_seconds",
        "Blocking lock-acquisition wait time by lock_order rank", labels,
        [rank] {
          const contention::Snapshot snap = contention::snapshot(rank);
          HistogramSnapshot h;
          h.bounds.assign(contention::kWaitBounds.begin(),
                          contention::kWaitBounds.end());
          h.counts.assign(snap.buckets.begin(), snap.buckets.end());
          h.sum = snap.wait_seconds;
          return h;
        }));
    out.handles.push_back(registry.counter_callback(
        "oda_lock_contended_total",
        "Lock acquisitions that lost their try_lock fast path", labels,
        [rank] {
          return static_cast<double>(contention::snapshot(rank).contended);
        }));
  }
  return out;
}

InstrumentationHandles register_profiler(MetricsRegistry& registry,
                                         const SamplingProfiler& profiler,
                                         const std::string& profiler_label) {
  InstrumentationHandles out;
  const LabelSet labels = {{"profiler", profiler_label}};
  out.handles.push_back(registry.counter_callback(
      "oda_profiler_samples_total", "Stack samples written to profiler rings",
      labels,
      [&profiler] { return static_cast<double>(profiler.sampled_total()); }));
  out.handles.push_back(registry.counter_callback(
      "oda_profiler_truncated_total",
      "Stack walks cut short by depth or frame-pointer checks", labels,
      [&profiler] {
        return static_cast<double>(profiler.truncated_total());
      }));
  out.handles.push_back(registry.gauge_callback(
      "oda_profiler_threads_watched",
      "Threads with a sample ring attached in the current run", labels,
      [&profiler] { return static_cast<double>(profiler.thread_count()); }));
  return out;
}

InstrumentationHandles register_tracer(MetricsRegistry& registry,
                                       const Tracer& tracer,
                                       const std::string& tracer_label) {
  InstrumentationHandles out;
  const LabelSet labels = {{"tracer", tracer_label}};
  out.handles.push_back(registry.gauge_callback(
      "oda_trace_events", "Spans currently retained in trace buffers", labels,
      [&tracer] { return static_cast<double>(tracer.event_count()); }));
  out.handles.push_back(registry.counter_callback(
      "oda_trace_dropped_total", "Spans dropped by a full trace buffer",
      labels, [&tracer] { return static_cast<double>(tracer.dropped()); }));
  return out;
}

InstrumentationHandles register_flight_recorder(
    MetricsRegistry& registry, const FlightRecorder& recorder,
    const std::string& recorder_label) {
  InstrumentationHandles out;
  const LabelSet labels = {{"recorder", recorder_label}};
  out.handles.push_back(registry.gauge_callback(
      "oda_flight_events", "Events currently retained in flight-recorder rings",
      labels,
      [&recorder] { return static_cast<double>(recorder.event_count()); }));
  out.handles.push_back(registry.counter_callback(
      "oda_flight_recorded_total",
      "Events recorded by the flight recorder since start", labels,
      [&recorder] { return static_cast<double>(recorder.recorded_total()); }));
  out.handles.push_back(registry.counter_callback(
      "oda_flight_dumps_total", "Flight-recorder postmortem dumps written",
      labels,
      [&recorder] { return static_cast<double>(recorder.dump_count()); }));
  return out;
}

}  // namespace oda::obs
