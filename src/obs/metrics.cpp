#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"
#include "common/trace_context.hpp"

namespace oda::obs {

namespace {

bool valid_name(const std::string& name, bool allow_colon) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    const bool extra = c == '_' || (allow_colon && c == ':');
    if (i == 0 ? !(alpha || extra) : !(alpha || digit || extra)) return false;
  }
  return true;
}

LabelSet sorted_labels(LabelSet labels) {
  for (const auto& [k, v] : labels) {
    static_cast<void>(v);
    validate_label_name(k);
  }
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Serializes a sorted label set into a map key. Uses \x1f separators so no
/// printable label value can collide with another set.
std::string label_key(const LabelSet& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1f';
  }
  return key;
}

}  // namespace

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

void validate_metric_name(const std::string& name) {
  ODA_REQUIRE(valid_name(name, /*allow_colon=*/true),
              "invalid metric name: " + name);
}

void validate_label_name(const std::string& name) {
  ODA_REQUIRE(valid_name(name, /*allow_colon=*/false),
              "invalid label name: " + name);
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  ODA_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must be ascending");
  ODA_REQUIRE(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
              "histogram bounds must be distinct");
}

void Histogram::observe(double value) noexcept {
  std::size_t bucket = bounds_.size();  // +Inf bucket
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  // relaxed (all three): per-bucket counts, the running sum, and the total
  // count are independent statistics; a scrape may observe them at slightly
  // different instants, which Prometheus semantics explicitly permit.
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Exemplar: remember the trace that produced the most recent extreme
  // observation so a slow bucket links straight to its causal trace.
  const TraceContext ctx = current_trace_context();
  if (ctx.active() &&
      // relaxed (all three): a debugging breadcrumb — the check-then-store
      // pair may interleave under concurrent extremes, leaving either
      // observation's (value, id); both are valid exemplars.
      value >= exemplar_value_.load(std::memory_order_relaxed)) {
    exemplar_value_.store(value, std::memory_order_relaxed);
    exemplar_trace_id_.store(ctx.trace_id, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    // relaxed: statistics read; see observe().
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  ODA_REQUIRE(start > 0.0 && factor > 1.0 && count > 0,
              "exponential_bounds requires start > 0, factor > 1, count > 0");
  std::vector<double> out;
  out.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

std::vector<double> default_latency_bounds() {
  return exponential_bounds(1e-6, 2.0, 27);  // 1us .. ~67s
}

// ----------------------------------------------------------------- snapshot

const MetricFamily* MetricsSnapshot::find(const std::string& name) const {
  for (const auto& f : families) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

double MetricsSnapshot::total(const std::string& name) const {
  const MetricFamily* f = find(name);
  if (f == nullptr) return 0.0;
  double sum = 0.0;
  for (const auto& v : f->values) sum += v.value;
  return sum;
}

// ----------------------------------------------------------- CallbackHandle

CallbackHandle::CallbackHandle(CallbackHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
}

CallbackHandle& CallbackHandle::operator=(CallbackHandle&& other) noexcept {
  if (this != &other) {
    release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
  }
  return *this;
}

CallbackHandle::~CallbackHandle() { release(); }

void CallbackHandle::release() {
  if (registry_ != nullptr) {
    registry_->remove_callback(id_);
    registry_ = nullptr;
  }
}

// ----------------------------------------------------------------- registry

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Family& MetricsRegistry::family_locked(
    const std::string& name, const std::string& help, MetricType type) {
  validate_metric_name(name);
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.type = type;
  } else {
    ODA_REQUIRE(it->second.type == type,
                "metric family re-registered with a different type: " + name);
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const LabelSet& labels) {
  const LabelSet sorted = sorted_labels(labels);
  MutexLock lock(mu_);
  Family& fam = family_locked(name, help, MetricType::kCounter);
  auto [it, inserted] = fam.series.try_emplace(label_key(sorted));
  if (inserted) {
    it->second.labels = sorted;
    it->second.counter = std::make_unique<Counter>();
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const LabelSet& labels) {
  const LabelSet sorted = sorted_labels(labels);
  MutexLock lock(mu_);
  Family& fam = family_locked(name, help, MetricType::kGauge);
  auto [it, inserted] = fam.series.try_emplace(label_key(sorted));
  if (inserted) {
    it->second.labels = sorted;
    it->second.gauge = std::make_unique<Gauge>();
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      const LabelSet& labels) {
  const LabelSet sorted = sorted_labels(labels);
  MutexLock lock(mu_);
  Family& fam = family_locked(name, help, MetricType::kHistogram);
  auto [it, inserted] = fam.series.try_emplace(label_key(sorted));
  if (inserted) {
    it->second.labels = sorted;
    it->second.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *it->second.histogram;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const LabelSet& labels) {
  return histogram(name, help, default_latency_bounds(), labels);
}

CallbackHandle MetricsRegistry::add_callback(const std::string& name,
                                             const std::string& help,
                                             MetricType type,
                                             const LabelSet& labels,
                                             std::function<double()> fn) {
  validate_metric_name(name);
  ODA_REQUIRE(fn != nullptr, "metric callback must not be null");
  const LabelSet sorted = sorted_labels(labels);
  MutexLock lock(mu_);
  const auto fam = families_.find(name);
  ODA_REQUIRE(fam == families_.end() || fam->second.type == type,
              "metric family re-registered with a different type: " + name);
  CallbackSeries cb;
  cb.id = next_callback_id_++;
  cb.name = name;
  cb.help = help;
  cb.type = type;
  cb.labels = sorted;
  cb.fn = std::move(fn);
  callbacks_.push_back(std::move(cb));
  return CallbackHandle(this, callbacks_.back().id);
}

CallbackHandle MetricsRegistry::gauge_callback(const std::string& name,
                                               const std::string& help,
                                               const LabelSet& labels,
                                               std::function<double()> fn) {
  return add_callback(name, help, MetricType::kGauge, labels, std::move(fn));
}

CallbackHandle MetricsRegistry::counter_callback(const std::string& name,
                                                 const std::string& help,
                                                 const LabelSet& labels,
                                                 std::function<double()> fn) {
  return add_callback(name, help, MetricType::kCounter, labels, std::move(fn));
}

CallbackHandle MetricsRegistry::histogram_callback(
    const std::string& name, const std::string& help, const LabelSet& labels,
    std::function<HistogramSnapshot()> fn) {
  validate_metric_name(name);
  ODA_REQUIRE(fn != nullptr, "metric callback must not be null");
  const LabelSet sorted = sorted_labels(labels);
  MutexLock lock(mu_);
  const auto fam = families_.find(name);
  ODA_REQUIRE(fam == families_.end() ||
                  fam->second.type == MetricType::kHistogram,
              "metric family re-registered with a different type: " + name);
  CallbackSeries cb;
  cb.id = next_callback_id_++;
  cb.name = name;
  cb.help = help;
  cb.type = MetricType::kHistogram;
  cb.labels = sorted;
  cb.hist_fn = std::move(fn);
  callbacks_.push_back(std::move(cb));
  return CallbackHandle(this, callbacks_.back().id);
}

void MetricsRegistry::remove_callback(std::uint64_t id) {
  MutexLock lock(mu_);
  callbacks_.erase(std::remove_if(callbacks_.begin(), callbacks_.end(),
                                  [id](const CallbackSeries& cb) {
                                    return cb.id == id;
                                  }),
                   callbacks_.end());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  std::map<std::string, std::size_t> index;  // name -> families index
  for (const auto& [name, fam] : families_) {
    MetricFamily out;
    out.name = name;
    out.help = fam.help;
    out.type = fam.type;
    for (const auto& [key, inst] : fam.series) {
      static_cast<void>(key);
      if (fam.type == MetricType::kHistogram) {
        HistogramValue h;
        h.labels = inst.labels;
        h.bounds = inst.histogram->bounds();
        h.counts = inst.histogram->bucket_counts();
        h.sum = inst.histogram->sum();
        h.count = inst.histogram->count();
        const Histogram::Exemplar ex = inst.histogram->exemplar();
        if (ex.trace_id != 0) {
          h.exemplar_value = ex.value;
          h.exemplar_trace_id = ex.trace_id;
        }
        out.histograms.push_back(std::move(h));
      } else {
        SeriesValue v;
        v.labels = inst.labels;
        v.value = fam.type == MetricType::kCounter
                      ? static_cast<double>(inst.counter->value())
                      : inst.gauge->value();
        out.values.push_back(std::move(v));
      }
    }
    index[name] = snap.families.size();
    snap.families.push_back(std::move(out));
  }
  for (const auto& cb : callbacks_) {
    const auto it = index.find(cb.name);
    if (it == index.end()) {
      MetricFamily fam;
      fam.name = cb.name;
      fam.help = cb.help;
      fam.type = cb.type;
      index[cb.name] = snap.families.size();
      snap.families.push_back(std::move(fam));
    }
    MetricFamily& fam = snap.families[index[cb.name]];
    if (cb.type == MetricType::kHistogram) {
      HistogramSnapshot hs = cb.hist_fn();
      HistogramValue h;
      h.labels = cb.labels;
      h.bounds = std::move(hs.bounds);
      h.counts = std::move(hs.counts);
      h.counts.resize(h.bounds.size() + 1);  // tolerate short callbacks
      h.sum = hs.sum;
      // Derive _count from the buckets so the cumulative +Inf bucket always
      // equals _count, even if the callback read racing atomics.
      for (const std::uint64_t c : h.counts) h.count += c;
      fam.histograms.push_back(std::move(h));
    } else {
      SeriesValue v;
      v.labels = cb.labels;
      v.value = cb.fn();
      fam.values.push_back(std::move(v));
    }
  }
  return snap;
}

std::size_t MetricsRegistry::family_count() const {
  MutexLock lock(mu_);
  std::map<std::string, bool> names;
  for (const auto& [name, fam] : families_) {
    static_cast<void>(fam);
    names[name] = true;
  }
  for (const auto& cb : callbacks_) names[cb.name] = true;
  return names.size();
}

}  // namespace oda::obs
