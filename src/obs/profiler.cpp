#include "obs/profiler.hpp"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>

#include <algorithm>
#include <array>
#include <chrono>
#include <map>
#include <unordered_map>

#include "common/log.hpp"

#if ODA_PROFILING_ENABLED
#include <cxxabi.h>
#include <dlfcn.h>
#include <ucontext.h>

#include <cstdlib>
#endif

namespace oda::obs {

// ------------------------------------------------------------------ ring

/// Per-thread sample ring. All-atomic slots under the FlightRecorder
/// seqlock protocol (obs/recorder.cpp documents the fence-free formulation
/// and why TSan requires it); the writer is the SIGPROF handler running on
/// the ring's own thread, readers are samples()/folded().
struct SamplingProfiler::Ring {
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ts_us{0};
    std::atomic<std::uint32_t> depth{0};
    std::array<std::atomic<std::uintptr_t>, kMaxProfFrames> pcs{};
  };

  explicit Ring(std::size_t capacity) : slots(capacity) {}

  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> sampled{0};
  std::atomic<std::uint64_t> truncated{0};
  std::uint32_t max_frames = kMaxProfFrames;
  const char* role = "";
  std::uint64_t tid = 0;
  const char* stack_lo = nullptr;
  const char* stack_hi = nullptr;
};

#if ODA_PROFILING_ENABLED

namespace {

/// Handlers in flight. Paired with detail::g_profiler_active in a seq_cst
/// handshake (see stop()): a handler either observes active == false after
/// publishing its increment and backs out, or stop() observes the
/// increment and waits — so after quiescence no handler can touch a ring.
std::atomic<std::uint64_t> g_handlers_inflight{0};

/// The instance whose rings are attached (one active profiler at a time).
std::atomic<SamplingProfiler*> g_active_profiler{nullptr};

std::uint64_t monotonic_us() noexcept {
  // clock_gettime is async-signal-safe (POSIX); steady_clock is the same
  // CLOCK_MONOTONIC on this platform, so timestamps line up with traces.
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ULL;
}

/// Frame-pointer walk + seqlock publish. Runs in signal context: only the
/// interrupted thread's own stack, the pre-allocated ring, and atomics.
void sample_into(SamplingProfiler::Ring& ring, void* uctx) noexcept {
  std::uintptr_t pcs[kMaxProfFrames];
  std::uint32_t depth = 0;
  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(uctx);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(uctx);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)uctx;
  pc = reinterpret_cast<std::uintptr_t>(__builtin_return_address(0));
#endif
  if (pc == 0) return;
  pcs[depth++] = pc;

#if defined(__SANITIZE_ADDRESS__)
  // Under ASan, chasing saved frame pointers would read through stack
  // redzones and fake frames; keep leaf-only samples there.
  fp = 0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  fp = 0;
#endif
#endif
  const char* lo = ring.stack_lo;
  const char* hi = ring.stack_hi;
  bool bad_walk = false;
  if (lo != nullptr && hi != nullptr) {
    while (depth < ring.max_frames && fp != 0) {
      if (fp % alignof(void*) != 0) {
        bad_walk = depth == 1;
        break;
      }
      const char* frame = reinterpret_cast<const char*>(fp);
      if (frame < lo || frame + 2 * sizeof(void*) > hi) {
        bad_walk = depth == 1;
        break;
      }
      // [fp] = caller's fp, [fp+8] = return address (fp-chain ABI layout,
      // valid because the tree builds with -fno-omit-frame-pointer under
      // ODA_PROFILE).
      const std::uintptr_t next_fp =
          *reinterpret_cast<const std::uintptr_t*>(fp);
      const std::uintptr_t ret =
          *reinterpret_cast<const std::uintptr_t*>(fp + sizeof(void*));
      if (ret == 0) break;
      pcs[depth++] = ret;
      // The chain must move strictly up the stack with a sane stride, or
      // we are following garbage (a frame built without fp, a signal
      // trampoline, ...). Stop rather than wander.
      if (next_fp <= fp || next_fp - fp > (1u << 20)) break;
      fp = next_fp;
    }
  }
  const bool truncated = depth == ring.max_frames || bad_walk;

  // Seqlock write (protocol + memory-order rationale: obs/recorder.cpp).
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  auto& slot = ring.slots[h & (ring.slots.size() - 1)];
  slot.seq.store(2 * h + 1, std::memory_order_relaxed);
  slot.ts_us.store(monotonic_us(), std::memory_order_release);
  slot.depth.store(depth, std::memory_order_release);
  for (std::uint32_t i = 0; i < depth; ++i) {
    slot.pcs[i].store(pcs[i], std::memory_order_release);
  }
  slot.seq.store(2 * h + 2, std::memory_order_release);
  ring.head.store(h + 1, std::memory_order_release);
  // relaxed (both): statistics counters.
  ring.sampled.fetch_add(1, std::memory_order_relaxed);
  if (truncated) ring.truncated.fetch_add(1, std::memory_order_relaxed);
}

void profiler_signal_handler(int /*sig*/, siginfo_t* /*info*/, void* uctx) {
  // Cheap bail-out for stray signals after stop. The handler stays
  // installed for the process lifetime: restoring the default disposition
  // would turn one in-flight SIGPROF into process death.
  if (!detail::g_profiler_active.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;
  // seq_cst RMW + seq_cst re-load vs. stop()'s seq_cst store-then-load:
  // the Dekker pattern guaranteeing either this handler sees active ==
  // false and backs out, or stop() sees the in-flight count and waits.
  g_handlers_inflight.fetch_add(1, std::memory_order_seq_cst);
  if (detail::g_profiler_active.load(std::memory_order_seq_cst)) {
    if (WatchedThread* rec = current_watched_thread()) {
      // acquire: pairs with the release store in attach(); the ring's
      // initialization is visible.
      if (auto* ring = static_cast<SamplingProfiler::Ring*>(
              rec->profiler_data.load(std::memory_order_acquire))) {
        sample_into(*ring, uctx);
      }
    }
  }
  // release: ring writes above happen-before stop()'s quiescence read.
  g_handlers_inflight.fetch_sub(1, std::memory_order_release);
  errno = saved_errno;
}

void install_signal_handler_once() {
  static const bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &profiler_signal_handler;
    sa.sa_flags = SA_RESTART | SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    return sigaction(SIGPROF, &sa, nullptr) == 0;
  }();
  if (!installed) {
    ODA_LOG_WARN << "profiler: failed to install SIGPROF handler";
  }
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Folded format: ';' separates frames and the last ' ' separates the
/// count — neither may appear inside a frame name.
void sanitize_frame_name(std::string& name) {
  for (char& c : name) {
    if (c == ';') c = ':';
    if (c == ' ') c = '_';
  }
}

/// Best-effort pc -> name, outside signal context. Return addresses point
/// one past the call site, so callers pass pc-1 for non-leaf frames.
/// Fallback ladder: demangled dynamic symbol -> module+offset (file-local
/// functions are absent from .dynsym even with -rdynamic) -> raw hex.
std::string symbolize_pc(std::uintptr_t pc) {
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0) {
    if (info.dli_sname != nullptr) {
      int status = 0;
      char* demangled =
          abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      std::string name =
          status == 0 && demangled != nullptr ? demangled : info.dli_sname;
      std::free(demangled);
      sanitize_frame_name(name);
      return name;
    }
    if (info.dli_fname != nullptr && info.dli_fbase != nullptr) {
      const char* base = std::strrchr(info.dli_fname, '/');
      std::string name = base != nullptr ? base + 1 : info.dli_fname;
      char off[2 + 2 + sizeof(std::uintptr_t) * 2 + 1];
      std::snprintf(off, sizeof(off), "+0x%zx",
                    static_cast<std::size_t>(
                        pc - reinterpret_cast<std::uintptr_t>(info.dli_fbase)));
      name += off;
      sanitize_frame_name(name);
      return name;
    }
  }
  char buf[2 + sizeof(std::uintptr_t) * 2 + 1];
  std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<std::size_t>(pc));
  return buf;
}

}  // namespace

#endif  // ODA_PROFILING_ENABLED

// ------------------------------------------------------------ lifecycle

SamplingProfiler& SamplingProfiler::global() {
  static SamplingProfiler profiler;
  return profiler;
}

SamplingProfiler::~SamplingProfiler() { stop(); }

#if ODA_PROFILING_ENABLED

bool SamplingProfiler::running() const {
  return g_active_profiler.load(std::memory_order_relaxed) == this &&
         active();
}

void SamplingProfiler::attach(WatchedThread& rec) {
  // Runs under the registry lock (start() sweep or registration hook);
  // rings_mu_ nests inside it by design, lifecycle_mu_ is never taken
  // here. The instance's options were published by the release store of
  // g_active_profiler in start() — plain reads are race-free after the
  // trampoline's acquire load (the sweep path is the same thread).
  if (rec.profiler_data.load(std::memory_order_relaxed) != nullptr) return;
  auto ring = std::make_shared<Ring>(ring_capacity_);
  ring->max_frames = ring_max_frames_;
  ring->role = rec.role;
  ring->tid = rec.os_tid;
  ring->stack_lo = rec.stack_lo;
  ring->stack_hi = rec.stack_hi;
  {
    MutexLock lock(rings_mu_);
    rings_.push_back(ring);
  }
  // release: publishes the fully initialized ring to the handler's acquire
  // load on this thread.
  rec.profiler_data.store(ring.get(), std::memory_order_release);
}

void SamplingProfiler::register_hook_trampoline(WatchedThread& rec) {
  // acquire: pairs with the release store in start(); ring_capacity_ /
  // ring_max_frames_ are visible before any hook-driven attach.
  if (SamplingProfiler* p = g_active_profiler.load(std::memory_order_acquire)) {
    p->attach(rec);
  }
}

bool SamplingProfiler::start(const ProfilerOptions& opts) {
  MutexLock lifecycle(lifecycle_mu_);
  if (running_) return false;
  SamplingProfiler* expected = nullptr;
  // acq_rel success / acquire failure: wins the one-active-profiler race;
  // the options are published by the release store below, after they are
  // written.
  // ODA-LINT-ALLOW(atomic-order): the orders are on the continuation lines.
  if (!g_active_profiler.compare_exchange_strong(expected, this,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
    ODA_LOG_WARN << "profiler: another instance is already active";
    return false;
  }
  opts_ = opts;
  ring_max_frames_ = static_cast<std::uint32_t>(
      std::clamp<std::size_t>(opts_.max_frames, 1, kMaxProfFrames));
  ring_capacity_ = round_up_pow2(std::max<std::size_t>(opts_.ring_capacity, 2));
  opts_.interval_us = std::max<std::uint64_t>(opts_.interval_us, 100);
  {
    MutexLock lock(rings_mu_);
    rings_.clear();  // previous run's samples; safe — handlers quiesced
  }
  signals_.store(0, std::memory_order_relaxed);
  install_signal_handler_once();
  // release: publishes the ring options to hook-driven attach() calls.
  g_active_profiler.store(this, std::memory_order_release);
  ThreadWatchRegistry::global().set_register_hook(&register_hook_trampoline);
  // Attach rings to every thread alive right now. Lock order here is
  // lifecycle -> thread_watch -> rings; attach() never takes lifecycle_mu_.
  ThreadWatchRegistry::global().for_each(
      [this](WatchedThread& rec) { attach(rec); });
  // seq_cst: the handler side of the stop() handshake reads this; from
  // here on SIGPROFs take samples.
  detail::g_profiler_active.store(true, std::memory_order_seq_cst);
  stop_flag_.store(false, std::memory_order_relaxed);
  watcher_ = std::thread(
      [this, interval_us = opts_.interval_us] { watcher_loop(interval_us); });
  running_ = true;
  return true;
}

void SamplingProfiler::stop() {
  MutexLock lifecycle(lifecycle_mu_);
  if (!running_) return;
  // release: watcher_loop's acquire load sees the flag before its next
  // signalling sweep.
  stop_flag_.store(true, std::memory_order_release);
  if (watcher_.joinable()) watcher_.join();
  // New threads must stop getting rings before handlers are quiesced.
  ThreadWatchRegistry::global().set_register_hook(nullptr);
  // Quiescence handshake (see profiler_signal_handler): after the seq_cst
  // store, any handler that passes its re-check was already counted in
  // g_handlers_inflight, so once the counter drains to zero no handler
  // can touch a ring again.
  detail::g_profiler_active.store(false, std::memory_order_seq_cst);
  while (g_handlers_inflight.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  // Detach: records may outlive this profiler run; rings are retained in
  // rings_ for samples()/folded() until clear() or the next start().
  ThreadWatchRegistry::global().for_each([](WatchedThread& rec) {
    // relaxed: handlers are quiesced; nothing reads this concurrently.
    rec.profiler_data.store(nullptr, std::memory_order_relaxed);
  });
  // relaxed: lifecycle_mu_ orders this against the next start().
  g_active_profiler.store(nullptr, std::memory_order_relaxed);
  running_ = false;
}

void SamplingProfiler::watcher_loop(std::uint64_t interval_us) {
  const auto interval = std::chrono::microseconds(interval_us);
  // acquire: pairs with stop()'s release store.
  while (!stop_flag_.load(std::memory_order_acquire)) {
    ThreadWatchRegistry::global().for_each([this](WatchedThread& rec) {
      // Only signal threads that have a ring to write into. Safe by the
      // registry's liveness contract: rec belongs to a thread that cannot
      // exit while for_each holds the registry lock.
      // relaxed: advisory filter; the handler re-loads with acquire.
      if (rec.profiler_data.load(std::memory_order_relaxed) == nullptr) return;
      if (pthread_kill(rec.handle, SIGPROF) == 0) {
        signals_.fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::this_thread::sleep_for(interval);
  }
}

std::vector<ProfileSample> SamplingProfiler::samples() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(rings_mu_);
    rings = rings_;
  }
  std::vector<ProfileSample> out;
  for (const auto& ring : rings) {
    // Seqlock read protocol — mirrors FlightRecorder::snapshot(), see
    // obs/recorder.cpp for the memory-order rationale.
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    const std::uint64_t begin = head > cap ? head - cap : 0;
    for (std::uint64_t i = begin; i < head; ++i) {
      const auto& slot = ring->slots[i & (cap - 1)];
      const std::uint64_t seq_a = slot.seq.load(std::memory_order_acquire);
      if (seq_a != 2 * i + 2) continue;
      ProfileSample sample;
      sample.role = ring->role;
      sample.tid = ring->tid;
      sample.ts_us = slot.ts_us.load(std::memory_order_acquire);
      std::uint32_t depth = slot.depth.load(std::memory_order_acquire);
      depth = std::min<std::uint32_t>(depth, kMaxProfFrames);
      sample.pcs.resize(depth);
      for (std::uint32_t f = 0; f < depth; ++f) {
        sample.pcs[f] = slot.pcs[f].load(std::memory_order_acquire);
      }
      // relaxed: the acquire loads above order this check after the
      // payload reads.
      if (slot.seq.load(std::memory_order_relaxed) != seq_a) continue;
      out.push_back(std::move(sample));
    }
  }
  return out;
}

std::string SamplingProfiler::folded() const {
  const std::vector<ProfileSample> all = samples();
  std::unordered_map<std::uintptr_t, std::string> symbol_cache;
  const auto symbol = [&symbol_cache](std::uintptr_t pc) -> const std::string& {
    auto it = symbol_cache.find(pc);
    if (it == symbol_cache.end()) {
      it = symbol_cache.emplace(pc, symbolize_pc(pc)).first;
    }
    return it->second;
  };
  // std::map: deterministic line order for a given sample multiset.
  std::map<std::string, std::uint64_t> counts;
  std::string stack;
  for (const ProfileSample& sample : all) {
    if (sample.pcs.empty()) continue;
    stack.clear();
    stack += sample.role;
    // Root-first: walk order is leaf-first, so emit in reverse. Non-leaf
    // pcs are return addresses — symbolize the call site (pc - 1).
    for (std::size_t f = sample.pcs.size(); f-- > 0;) {
      stack += ';';
      const std::uintptr_t pc = sample.pcs[f];
      stack += symbol(f == 0 ? pc : pc - 1);
    }
    ++counts[stack];
  }
  std::string out;
  char line[32];
  for (const auto& [key, count] : counts) {
    out += key;
    std::snprintf(line, sizeof(line), " %llu\n",
                  static_cast<unsigned long long>(count));
    out += line;
  }
  return out;
}

bool SamplingProfiler::dump_folded(const std::string& path) const {
  const std::string text = folded();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    ODA_LOG_WARN << "profiler: cannot open folded output " << path;
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    ODA_LOG_WARN << "profiler: short write to " << path;
    return false;
  }
  return true;
}

std::uint64_t SamplingProfiler::sampled_total() const {
  MutexLock lock(rings_mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    // relaxed: statistics counter.
    total += ring->sampled.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t SamplingProfiler::truncated_total() const {
  MutexLock lock(rings_mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    // relaxed: statistics counter.
    total += ring->truncated.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t SamplingProfiler::signals_sent() const {
  return signals_.load(std::memory_order_relaxed);
}

std::size_t SamplingProfiler::thread_count() const {
  MutexLock lock(rings_mu_);
  return rings_.size();
}

void SamplingProfiler::clear() {
  MutexLock lifecycle(lifecycle_mu_);
  if (running_) {
    ODA_LOG_WARN << "profiler: clear() ignored while running";
    return;
  }
  MutexLock lock(rings_mu_);
  rings_.clear();
}

#else  // !ODA_PROFILING_ENABLED

bool SamplingProfiler::running() const { return false; }
void SamplingProfiler::attach(WatchedThread&) {}
void SamplingProfiler::register_hook_trampoline(WatchedThread&) {}
bool SamplingProfiler::start(const ProfilerOptions&) { return false; }
void SamplingProfiler::stop() {}
void SamplingProfiler::watcher_loop(std::uint64_t) {}
std::vector<ProfileSample> SamplingProfiler::samples() const { return {}; }
std::string SamplingProfiler::folded() const { return {}; }
bool SamplingProfiler::dump_folded(const std::string& path) const {
  // Still writes the (empty) file so export pipelines keep working with
  // profiling compiled out.
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}
std::uint64_t SamplingProfiler::sampled_total() const { return 0; }
std::uint64_t SamplingProfiler::truncated_total() const { return 0; }
std::uint64_t SamplingProfiler::signals_sent() const { return 0; }
std::size_t SamplingProfiler::thread_count() const { return 0; }
void SamplingProfiler::clear() {}

#endif  // ODA_PROFILING_ENABLED

}  // namespace oda::obs
