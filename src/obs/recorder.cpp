#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/log.hpp"

namespace oda::obs {

namespace {

std::atomic<std::uint64_t> g_next_recorder_id{1};

/// Per-thread registration, same scheme as Tracer: recorder id -> this
/// thread's ring. The recorder keeps its own shared_ptr so rings survive
/// thread exit until dumped.
std::map<std::uint64_t, std::shared_ptr<void>>& thread_ring_map() {
  thread_local std::map<std::uint64_t, std::shared_ptr<void>> map;
  return map;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t ring_capacity)
    // relaxed: the id only needs uniqueness, not ordering.
    : recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      ring_capacity_(round_up_pow2(std::max<std::size_t>(ring_capacity, 2))) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::set_enabled(bool enabled) {
  // relaxed: advisory flag, see enabled().
  enabled_.store(enabled, std::memory_order_relaxed);
  if (this == &global()) {
    // Mirror into the shared sink mask the span macros read (trace.hpp).
    // relaxed RMW: same advisory on/off semantics as the flag itself.
    auto& mode = detail::g_trace_mode;
    if (enabled) {
      mode.fetch_or(detail::kTraceModeRecorder, std::memory_order_relaxed);
    } else {
      mode.fetch_and(~detail::kTraceModeRecorder, std::memory_order_relaxed);
    }
  }
}

FlightRecorder::Ring& FlightRecorder::local_ring() {
  auto& map = thread_ring_map();
  const auto it = map.find(recorder_id_);
  if (it != map.end()) {
    return *static_cast<Ring*>(it->second.get());
  }
  auto ring = std::make_shared<Ring>(ring_capacity_);
  {
    MutexLock lock(mu_);
    ring->tid = next_tid_++;
    rings_.push_back(ring);
  }
  map.emplace(recorder_id_, ring);
  return *ring;
}

void FlightRecorder::record(const char* name, const char* category,
                            std::uint64_t ts_us, std::uint64_t dur_us,
                            TraceEventKind kind, std::uint64_t trace_id,
                            std::uint64_t span_id,
                            std::uint64_t parent_id) noexcept {
  Ring& ring = local_ring();
  // relaxed: head is written by this thread only; the release store below
  // publishes the slot before the new head value matters to readers.
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[h & (ring.slots.size() - 1)];
  // Seqlock write protocol: odd marks the slot in-progress so a concurrent
  // snapshot() skips it instead of reading a half-written event. The
  // fence-free formulation (release payload stores pairing with the
  // reader's acquire payload loads) is used because TSan cannot instrument
  // atomic_thread_fence: any reader that observes a payload value from this
  // lap is then guaranteed to observe the odd (or newer) seq on its
  // re-check and reject the slot. On x86 these release stores compile to
  // the same plain movs as relaxed stores plus a fence would.
  slot.seq.store(2 * h + 1, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_release);
  slot.category.store(category, std::memory_order_release);
  slot.ts_us.store(ts_us, std::memory_order_release);
  slot.dur_us.store(dur_us, std::memory_order_release);
  slot.trace_id.store(trace_id, std::memory_order_release);
  slot.span_id.store(span_id, std::memory_order_release);
  slot.parent_id.store(parent_id, std::memory_order_release);
  slot.kind.store(static_cast<std::uint32_t>(kind), std::memory_order_release);
  // release: publishes the payload with the stable (even) sequence value.
  slot.seq.store(2 * h + 2, std::memory_order_release);
  // release: a reader that sees this head has the slot's final seq visible.
  ring.head.store(h + 1, std::memory_order_release);
  // relaxed: statistics counter.
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    // acquire: pairs with the release head store so slots below the head
    // are fully published.
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    const std::uint64_t begin = head > cap ? head - cap : 0;
    for (std::uint64_t i = begin; i < head; ++i) {
      const Slot& slot = ring->slots[i & (cap - 1)];
      // Seqlock read: accept only when both seq reads match the stable
      // value for exactly this ring position (2i+2); anything else means
      // the writer lapped or is mid-write — skip, never tear.
      // acquire: pairs with the writer's final release store.
      const std::uint64_t seq_a = slot.seq.load(std::memory_order_acquire);
      if (seq_a != 2 * i + 2) continue;
      TraceEvent ev;
      // acquire payload loads: each pairs with the writer's release store,
      // so a load that observes a newer lap's value forces the seq re-check
      // below to observe that lap's odd (or newer) seq and reject. They
      // also keep the re-check ordered after every payload load without an
      // acquire fence (which TSan cannot instrument).
      const char* name = slot.name.load(std::memory_order_acquire);
      const char* category = slot.category.load(std::memory_order_acquire);
      ev.ts_us = slot.ts_us.load(std::memory_order_acquire);
      ev.dur_us = slot.dur_us.load(std::memory_order_acquire);
      ev.trace_id = slot.trace_id.load(std::memory_order_acquire);
      ev.span_id = slot.span_id.load(std::memory_order_acquire);
      ev.parent_id = slot.parent_id.load(std::memory_order_acquire);
      ev.kind = static_cast<TraceEventKind>(
          slot.kind.load(std::memory_order_acquire));
      // relaxed: the acquire loads above order this check after the payload.
      if (slot.seq.load(std::memory_order_relaxed) != seq_a) continue;
      if (name == nullptr || category == nullptr) continue;
      ev.name = name;
      ev.category = category;
      ev.tid = ring->tid;
      out.push_back(std::move(ev));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

std::string FlightRecorder::to_chrome_json() const {
  return chrome_trace_json(snapshot());
}

std::size_t FlightRecorder::event_count() const { return snapshot().size(); }

void FlightRecorder::clear() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(mu_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    for (auto& slot : ring->slots) {
      // relaxed: callers quiesce writers before clear() (documented).
      slot.seq.store(0, std::memory_order_relaxed);
    }
    // relaxed: same quiescence contract.
    ring->head.store(0, std::memory_order_relaxed);
  }
}

void FlightRecorder::set_dump_path(std::string path) {
  MutexLock lock(mu_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  MutexLock lock(mu_);
  return dump_path_;
}

bool FlightRecorder::dump_to_file(const std::string& path) {
  std::string target = path;
  if (target.empty()) target = dump_path();
  if (target.empty()) return false;
  const std::string json = to_chrome_json();
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) {
    ODA_LOG_WARN << "flight recorder: cannot open dump file " << target;
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    ODA_LOG_WARN << "flight recorder: short write to " << target;
    return false;
  }
  // relaxed: statistics counter.
  dumps_.fetch_add(1, std::memory_order_relaxed);
  ODA_LOG_INFO << "flight recorder: dumped " << target;
  return true;
}

}  // namespace oda::obs
