#include "obs/cell.hpp"

namespace oda::obs {

namespace {
constexpr char kRunsName[] = "oda_analytics_runs_total";
constexpr char kRunsHelp[] =
    "Invocations of instrumented analytics capabilities per grid cell";
constexpr char kSecondsName[] = "oda_analytics_run_seconds";
constexpr char kSecondsHelp[] =
    "Latency of instrumented analytics capabilities per grid cell";
}  // namespace

CellScope::CellScope(const char* pillar, const char* type,
                     const char* capability)
    : runs_(MetricsRegistry::global().counter(
          kRunsName, kRunsHelp,
          {{"pillar", pillar}, {"type", type}, {"capability", capability}})),
      seconds_(MetricsRegistry::global().histogram(
          kSecondsName, kSecondsHelp, default_latency_bounds(),
          {{"pillar", pillar}, {"type", type}})),
      capability_(capability),
      start_us_(Tracer::global().now_us()) {}

CellScope::~CellScope() {
  const std::uint64_t end_us = Tracer::global().now_us();
  runs_.inc();
  seconds_.observe(static_cast<double>(end_us - start_us_) * 1e-6);
  if (Tracer::global().enabled()) {
    Tracer::global().record(capability_, "analytics", start_us_,
                            end_us - start_us_);
  }
}

}  // namespace oda::obs
