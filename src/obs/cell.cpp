#include "obs/cell.hpp"

namespace oda::obs {

namespace {
constexpr char kRunsName[] = "oda_analytics_runs_total";
constexpr char kRunsHelp[] =
    "Invocations of instrumented analytics capabilities per grid cell";
constexpr char kSecondsName[] = "oda_analytics_run_seconds";
constexpr char kSecondsHelp[] =
    "Latency of instrumented analytics capabilities per grid cell";
}  // namespace

CellScope::CellScope(const char* pillar, const char* type,
                     const char* capability)
    : runs_(MetricsRegistry::global().counter(
          kRunsName, kRunsHelp,
          {{"pillar", pillar}, {"type", type}, {"capability", capability}})),
      seconds_(MetricsRegistry::global().histogram(
          kSecondsName, kSecondsHelp, default_latency_bounds(),
          {{"pillar", pillar}, {"type", type}})),
      span_(capability, "analytics"),
      start_us_(Tracer::global().now_us()) {}

CellScope::~CellScope() {
  const std::uint64_t end_us = Tracer::global().now_us();
  runs_.inc();
  // Observed before span_ closes (members destroy in reverse order), so the
  // exemplar recorded for oda_analytics_run_seconds links to this cell's
  // own span id's trace.
  seconds_.observe(static_cast<double>(end_us - start_us_) * 1e-6);
}

}  // namespace oda::obs
