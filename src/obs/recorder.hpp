// Always-on flight recorder: a bounded per-thread ring of the most recent
// spans and instants, recording even while full tracing is disabled. It is
// the black box of the pipeline — when a health check trips or a chaos
// campaign fails, the last moments of every thread are still in memory and
// can be dumped to Chrome trace JSON for postmortem inspection
// (assess_pipeline_health dumps it automatically on the healthy->unhealthy
// edge when a dump path is configured).
//
// Cost model: enabled by default, a recorded event is two steady-clock reads
// (shared with the tracer path) plus a handful of release atomic stores into
// a fixed ring slot (plain movs on x86) — no locks, no allocation, no
// branches on capacity.
// Disabling it (set_enabled(false)) together with a disabled Tracer returns
// span entry to a single relaxed load (see trace.hpp's cost model).
//
// Concurrency: each thread writes only its own ring; slots are plain atomic
// words guarded by a per-slot sequence counter (a seqlock), so a concurrent
// snapshot() skips slots that are mid-write instead of tearing. Names and
// categories are retained as raw `const char*` — string literals only.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "obs/trace.hpp"

namespace oda::obs {

class FlightRecorder {
 public:
  /// ring_capacity: events retained per thread, rounded up to a power of
  /// two (default 1024). Applies to rings created after construction.
  explicit FlightRecorder(std::size_t ring_capacity = 1024);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// The process-wide recorder the ODA_TRACE_* macros feed. Enabled by
  /// default (always-on).
  static FlightRecorder& global();

  void set_enabled(bool enabled);
  bool enabled() const {
    // relaxed: advisory on/off flag, same semantics as Tracer::enabled().
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one event into the calling thread's ring, overwriting the
  /// oldest. name/category must be string literals (retained as pointers).
  void record(const char* name, const char* category, std::uint64_t ts_us,
              std::uint64_t dur_us, TraceEventKind kind,
              std::uint64_t trace_id, std::uint64_t span_id,
              std::uint64_t parent_id) noexcept;

  /// Copies every currently-retained event (all threads), ordered by start
  /// time. Slots concurrently being overwritten are skipped, not torn.
  std::vector<TraceEvent> snapshot() const;
  /// Chrome trace JSON of snapshot(). Ring eviction may orphan parent ids;
  /// scripts/check_trace.py --allow-missing-parents accepts such dumps.
  std::string to_chrome_json() const;

  /// Events currently retained / recorded since construction / dumps taken.
  std::size_t event_count() const;
  std::uint64_t recorded_total() const {
    // relaxed: statistics counter.
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t dump_count() const {
    // relaxed: statistics counter.
    return dumps_.load(std::memory_order_relaxed);
  }

  /// Resets every ring. Callers must quiesce writers first (test helper).
  void clear();

  /// Destination for automatic postmortem dumps ("" disables, the default).
  void set_dump_path(std::string path);
  std::string dump_path() const;

  /// Writes to_chrome_json() to `path` (or dump_path() when empty).
  /// Returns false when no path is configured or the write fails.
  bool dump_to_file(const std::string& path = "");

 private:
  // One event slot. All members are atomics written by the owning thread
  // only; `seq` is the seqlock word readers use to detect tearing
  // (odd = write in progress; stable value encodes the ring head position
  // so readers also reject slots lapped mid-scan).
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> category{nullptr};
    std::atomic<std::uint64_t> ts_us{0};
    std::atomic<std::uint64_t> dur_us{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> parent_id{0};
    std::atomic<std::uint32_t> kind{0};
  };
  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::vector<Slot> slots;  // power-of-two length
    std::atomic<std::uint64_t> head{0};  // next write position (monotonic)
    std::uint32_t tid = 0;
  };

  Ring& local_ring();

  const std::uint64_t recorder_id_;
  const std::size_t ring_capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dumps_{0};
  // Guards ring registration and the dump path only. The per-slot seqlock
  // protocol (Slot::seq) deliberately stays outside the annotated-mutex
  // world: writers are lock-free by design (record() is called from span
  // destructors on every instrumented thread) and readers detect torn slots
  // via the sequence word, so there is no capability the analysis could
  // associate with the payload atomics.
  mutable Mutex mu_ ODA_ACQUIRED_AFTER(lock_order::trace)
      ODA_ACQUIRED_BEFORE(lock_order::log){LockRankId::kTrace};
  std::vector<std::shared_ptr<Ring>> rings_ ODA_GUARDED_BY(mu_);
  std::uint32_t next_tid_ ODA_GUARDED_BY(mu_) = 1;
  std::string dump_path_ ODA_GUARDED_BY(mu_);
};

}  // namespace oda::obs
