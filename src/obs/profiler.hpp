// Sampling wall-clock profiler for the pipeline's own threads.
//
// A watcher thread periodically sends SIGPROF to every thread registered in
// the ThreadWatchRegistry (ThreadPool workers register automatically; other
// threads opt in with a WatchedThreadScope). The async-signal-safe handler
// walks the interrupted thread's frame-pointer chain — bounds-checked
// against the stack limits captured at registration — and writes the
// backtrace into a per-thread lock-free ring using the same seqlock
// protocol as the FlightRecorder (obs/recorder.cpp documents the memory
// orders). Because samples are taken on the wall clock rather than CPU
// time, threads blocked in locks or queue pops are sampled too: the folded
// output shows where time *goes*, including waiting.
//
// Signal-safety rules the handler obeys (docs/OBSERVABILITY.md "Profiling"):
//   * no locks, no allocation, no TLS with dynamic init — only plain
//     atomics, the registration record, and the thread's own stack;
//   * every sample ring is pre-allocated before the first signal can fire;
//   * errno is saved and restored;
//   * an in-flight counter plus a seq_cst active-flag handshake lets stop()
//     quiesce handlers before rings are detached, so a late signal can
//     never touch freed memory.
//
// Output: folded stacks ("role;frame;frame;... count", root first — the
// format scripts/stack_collapse-style tooling and flamegraph.pl consume),
// plus raw samples for tests. Compile out with -DODA_PROFILE=OFF; the
// disabled runtime cost of an installed-but-stopped profiler is one relaxed
// load (SamplingProfiler::active(), measured by BM_ProfilerGateDisabled).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_watch.hpp"

namespace oda::obs {

/// Hard cap on frames captured per sample (slot size is fixed at compile
/// time so the handler never allocates).
inline constexpr std::size_t kMaxProfFrames = 32;

struct ProfilerOptions {
  std::uint64_t interval_us = 2000;  ///< sampling period per thread
  std::size_t max_frames = kMaxProfFrames;  ///< clamped to kMaxProfFrames
  std::size_t ring_capacity = 1024;  ///< per-thread slots, rounded to pow2
};

namespace detail {
/// Process-wide gate, read first by the SIGPROF handler and by active().
/// One profiler may run at a time (the handler and TLS are process-global).
inline std::atomic<bool> g_profiler_active{false};
}  // namespace detail

/// One decoded sample (tests and custom exporters; folded() is the
/// human-facing aggregation).
struct ProfileSample {
  const char* role = "";
  std::uint64_t tid = 0;
  std::uint64_t ts_us = 0;
  std::vector<std::uintptr_t> pcs;  ///< leaf first (pcs[0] = interrupted pc)
};

class SamplingProfiler {
 public:
  SamplingProfiler() = default;
  ~SamplingProfiler();

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// The process-wide instance used by examples and benches.
  static SamplingProfiler& global();

  /// True while any profiler is sampling. One relaxed load — this is the
  /// entire hot-path cost of compiled-in-but-stopped profiling.
  static bool active() noexcept {
    // relaxed: advisory gate; the stop() handshake uses its own seq_cst
    // protocol, this read is for cheap steady-state checks.
    return detail::g_profiler_active.load(std::memory_order_relaxed);
  }

  /// Starts sampling every watched thread. Returns false if profiling is
  /// compiled out, another profiler is active, or this one already runs.
  /// Retained samples from a previous run are dropped.
  bool start(const ProfilerOptions& opts = {});

  /// Stops the watcher, quiesces in-flight handlers, and detaches rings.
  /// Samples stay readable until clear() or the next start().
  void stop();

  bool running() const;

  /// Decoded samples from every ring (retired threads included), oldest
  /// lap first per thread. Safe while running (seqlock snapshot).
  std::vector<ProfileSample> samples() const;

  /// Symbolized folded stacks, aggregated and sorted by stack string:
  /// "role;outermost;...;leaf count\n" per line. Symbolization (dladdr +
  /// demangle) happens here, never in the handler.
  std::string folded() const;

  /// Writes folded() to a file; false (with a log warning) on I/O failure.
  bool dump_folded(const std::string& path) const;

  std::uint64_t sampled_total() const;    ///< samples written to rings
  std::uint64_t truncated_total() const;  ///< walks cut short (depth/fp)
  std::uint64_t signals_sent() const;     ///< SIGPROFs the watcher issued
  std::size_t thread_count() const;       ///< rings ever attached this run

  /// Drops retained rings/samples. Only valid while stopped.
  void clear();

  /// Per-thread sample ring. Defined in profiler.cpp; public only so the
  /// file-local signal handler there can name it (it is reachable anyway
  /// through WatchedThread::profiler_data).
  struct Ring;

 private:
  void attach(WatchedThread& rec);
  void watcher_loop(std::uint64_t interval_us);
  static void register_hook_trampoline(WatchedThread& rec);

  /// Serializes start/stop/clear. Held while calling into the registry
  /// (lock order: lifecycle -> thread_watch -> rings_mu_).
  mutable Mutex lifecycle_mu_;
  /// Guards rings_ only; taken under the registry lock in attach(), and
  /// standalone by readers. Never held while taking another lock.
  mutable Mutex rings_mu_;
  std::vector<std::shared_ptr<Ring>> rings_ ODA_GUARDED_BY(rings_mu_);
  bool running_ ODA_GUARDED_BY(lifecycle_mu_) = false;
  ProfilerOptions opts_ ODA_GUARDED_BY(lifecycle_mu_);
  std::thread watcher_ ODA_GUARDED_BY(lifecycle_mu_);
  /// Normalized ring geometry for attach(). Written in start() before the
  /// release publish of the active-instance pointer; read plainly by
  /// attach() after the trampoline's acquire load (or on the start thread
  /// itself), so no lock is needed.
  std::size_t ring_capacity_ = 1024;
  std::uint32_t ring_max_frames_ = kMaxProfFrames;
  std::atomic<bool> stop_flag_{false};
  std::atomic<std::uint64_t> signals_{0};
};

}  // namespace oda::obs
