// Exposition formats for MetricsSnapshot: Prometheus text format 0.0.4
// (scrapeable / checkable with scripts/check_prom.py) and a JSON snapshot
// for dashboards and tests.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace oda::obs {

/// Prometheus text exposition: # HELP / # TYPE comments, one line per
/// series, histograms expanded to cumulative _bucket/_sum/_count series.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON document: {"families": [{name, type, help, series|histograms}]}.
std::string to_json(const MetricsSnapshot& snapshot);

/// Escapes a Prometheus label value (backslash, double-quote, newline).
std::string escape_label_value(const std::string& value);
/// Escapes a HELP text (backslash and newline only, per the format spec).
std::string escape_help_text(const std::string& value);
/// Renders a sample value: integers exactly, doubles with round-trip
/// precision, infinities as +Inf/-Inf.
std::string format_sample_value(double value);

}  // namespace oda::obs
