// Span tracing for the ODA stack itself: RAII scopes recorded into
// per-thread buffers and exported as Chrome trace_event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
//   void Collector::collect() {
//     ODA_TRACE_SPAN("collector.collect");
//     ...
//   }
//
// Cost model:
//   * ODA_TRACING=OFF (CMake option): the macro expands to nothing — zero
//     code, zero data, zero overhead. The Tracer class itself still links
//     so tooling code compiles either way.
//   * compiled in, Tracer disabled (default): one relaxed atomic load per
//     scope entry.
//   * enabled: two steady_clock reads plus an uncontended per-thread mutex
//     push (the mutex is only contended while a snapshot drains buffers).
//
// Span names must outlive the span (string literals in practice); they are
// copied into the event on completion, so short names stay allocation-free
// via SSO.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef ODA_TRACING_ENABLED
#define ODA_TRACING_ENABLED 1
#endif

namespace oda::obs {

struct TraceEvent {
  std::string name;        // e.g. "collector.collect"
  std::string category;    // layer: "sim", "telemetry", "analytics", ...
  std::uint64_t ts_us = 0;   // start, microseconds since tracer epoch
  std::uint64_t dur_us = 0;  // duration in microseconds
  std::uint32_t tid = 0;     // tracer-assigned thread index
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// The process-wide tracer the ODA_TRACE_SPAN macro records into.
  static Tracer& global();

  /// Recording is off by default; spans taken while disabled cost one
  /// relaxed atomic load and record nothing.
  void set_enabled(bool enabled);
  bool enabled() const {
    // relaxed: an independent on/off flag; a span may see a toggle late,
    // which only means one more or fewer event — no data is guarded by it.
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Caps retained events across all threads (default 1<<16); further
  /// events are counted in dropped() instead of recorded.
  void set_capacity(std::size_t max_events);
  std::uint64_t dropped() const {
    // relaxed: statistics counter.
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Microseconds since this tracer was constructed (the trace epoch).
  std::uint64_t now_us() const;

  /// Records a completed span. Usually called via ODA_TRACE_SPAN.
  void record(const char* name, const char* category, std::uint64_t ts_us,
              std::uint64_t dur_us);

  /// Copies every retained event (all threads), ordered by start time.
  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;
  /// Discards retained events and resets the drop counter.
  void clear();

  /// Chrome trace_event JSON ("traceEvents" array of complete "X" events).
  std::string to_chrome_json() const;

 private:
  struct ThreadBuffer {
    std::mutex mu;  // guards events; contended only while draining
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  ThreadBuffer& local_buffer();

  const std::uint64_t tracer_id_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> capacity_{1 << 16};
  mutable std::mutex mu_;  // guards buffers_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 1;
};

/// RAII span: measures construction-to-destruction and records it into
/// Tracer::global(). Prefer the ODA_TRACE_SPAN macro, which compiles out.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "oda")
      : name_(name), category_(category) {
    Tracer& tracer = Tracer::global();
    if (tracer.enabled()) {
      armed_ = true;
      start_us_ = tracer.now_us();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (armed_) {
      Tracer& tracer = Tracer::global();
      tracer.record(name_, category_, start_us_, tracer.now_us() - start_us_);
    }
  }

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
  bool armed_ = false;
};

}  // namespace oda::obs

#define ODA_TRACE_CONCAT_INNER(a, b) a##b
#define ODA_TRACE_CONCAT(a, b) ODA_TRACE_CONCAT_INNER(a, b)

#if ODA_TRACING_ENABLED
/// Traces the enclosing scope as a span named `name` (a string literal) in
/// layer `category`. Compiles to nothing when ODA_TRACING=OFF.
#define ODA_TRACE_SPAN_CAT(name, category)                 \
  ::oda::obs::TraceSpan ODA_TRACE_CONCAT(oda_trace_span_, \
                                         __LINE__)((name), (category))
#else
#define ODA_TRACE_SPAN_CAT(name, category) static_cast<void>(0)
#endif

#define ODA_TRACE_SPAN(name) ODA_TRACE_SPAN_CAT(name, "oda")
