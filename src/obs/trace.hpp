// Causal span tracing for the ODA stack itself: RAII scopes recorded into
// per-thread buffers and exported as Chrome trace_event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
//   void Collector::collect() {
//     ODA_TRACE_SPAN("collector.collect");
//     ...
//   }
//
// Every span carries a 64-bit (trace id, span id, parent id) triple. On
// entry a span reads the thread-local TraceContext (common/trace_context.hpp):
// if a context is active the span joins that trace as a child; otherwise it
// roots a new trace. The context propagates across async boundaries —
// ThreadPool::submit captures it into the task and MessageBus delivery spans
// nest under the publish — so one collect pass forms a single connected tree
// from sensor read through bus fan-out, store ingest, and analytics cells.
// Zero-duration *instant* events (ODA_TRACE_INSTANT) mark point occurrences
// (a retry, a breaker transition) inside the owning span.
//
// Cost model:
//   * ODA_TRACING=OFF (CMake option): the macros expand to nothing — zero
//     code, zero data, zero overhead. The Tracer class itself still links
//     so tooling code compiles either way.
//   * compiled in, Tracer disabled and FlightRecorder disabled: one relaxed
//     atomic load (of the shared sink mask) per scope entry.
//   * FlightRecorder only (the default — see obs/recorder.hpp): two
//     steady-clock reads plus a handful of relaxed stores into a bounded
//     per-thread ring.
//   * Tracer enabled: additionally an uncontended per-thread mutex push
//     (the mutex is only contended while a snapshot drains buffers).
//
// Span names must outlive the span (string literals in practice); the flight
// recorder retains them as raw pointers, so literals are mandatory there.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "common/trace_context.hpp"

#ifndef ODA_TRACING_ENABLED
#define ODA_TRACING_ENABLED 1
#endif

namespace oda::obs {

enum class TraceEventKind : std::uint8_t {
  kSpan = 0,     // Chrome "X": has a duration
  kInstant = 1,  // Chrome "i": zero-duration point event
};

struct TraceEvent {
  std::string name;          // e.g. "collector.collect"
  std::string category;      // layer: "sim", "telemetry", "analytics", ...
  std::uint64_t ts_us = 0;   // start, microseconds since tracer epoch
  std::uint64_t dur_us = 0;  // duration in microseconds (0 for instants)
  std::uint32_t tid = 0;     // tracer-assigned thread index
  TraceEventKind kind = TraceEventKind::kSpan;
  std::uint64_t trace_id = 0;   // causal chain id; 0 = untraced event
  std::uint64_t span_id = 0;    // this event's own id
  std::uint64_t parent_id = 0;  // enclosing span's id; 0 = trace root
};

namespace detail {

// Shared sink mask read by every span/instant entry: bit 0 = the global
// Tracer is enabled, bit 1 = the global FlightRecorder is enabled. One
// relaxed load of this word is the entire cost of a span when both are off.
inline constexpr unsigned kTraceModeTracer = 1u;
inline constexpr unsigned kTraceModeRecorder = 2u;
extern std::atomic<unsigned> g_trace_mode;

/// Out-of-line slow paths (trace.cpp): dispatch a finished span / an
/// instant to whichever sinks `mode` has armed.
void finish_span(const char* name, const char* category,
                 std::uint64_t start_us, TraceContext ctx,
                 std::uint64_t parent_span_id, unsigned mode);
void emit_instant(const char* name, const char* category, unsigned mode);

}  // namespace detail

/// Renders events as Chrome trace_event JSON: "X" complete events and "i"
/// instants, each carrying args.{trace_id,span_id,parent_id} as 16-char hex
/// strings when the event belongs to a trace, plus "s"/"f" flow-event pairs
/// binding every cross-thread parent->child edge so Perfetto draws the
/// causality arrows. Names and categories are fully JSON-escaped.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// 16-char lowercase hex rendering of a trace/span id.
std::string trace_id_hex(std::uint64_t id);

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// The process-wide tracer the ODA_TRACE_SPAN macro records into.
  static Tracer& global();

  /// Recording is off by default; spans taken while disabled cost one
  /// relaxed atomic load and record nothing (unless the always-on flight
  /// recorder picks them up — see obs/recorder.hpp).
  void set_enabled(bool enabled);
  bool enabled() const {
    // relaxed: an independent on/off flag; a span may see a toggle late,
    // which only means one more or fewer event — no data is guarded by it.
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Caps retained events across all threads (default 1<<16); further
  /// events are counted in dropped() instead of recorded.
  void set_capacity(std::size_t max_events);
  std::uint64_t dropped() const {
    // relaxed: statistics counter.
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Microseconds since this tracer was constructed (the trace epoch).
  std::uint64_t now_us() const;

  /// Records a completed span or instant. Usually called via the
  /// ODA_TRACE_* macros; the id triple defaults to 0 (untraced) so callers
  /// that predate causal tracing keep working.
  void record(const char* name, const char* category, std::uint64_t ts_us,
              std::uint64_t dur_us,
              TraceEventKind kind = TraceEventKind::kSpan,
              std::uint64_t trace_id = 0, std::uint64_t span_id = 0,
              std::uint64_t parent_id = 0);

  /// Copies every retained event (all threads), ordered by start time.
  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;
  /// Discards retained events and resets the drop counter.
  void clear();

  /// Chrome trace_event JSON for every retained event (chrome_trace_json).
  std::string to_chrome_json() const;

 private:
  struct ThreadBuffer {
    /// Trace-level like mu_; the two are taken nested (mu_ then buf->mu in
    /// event_count/clear) but carry no mutual edge — the analysis only
    /// checks declared pairs, and this intra-subsystem nesting is uniform.
    Mutex mu ODA_ACQUIRED_AFTER(lock_order::trace)
        ODA_ACQUIRED_BEFORE(lock_order::log);
    std::vector<TraceEvent> events ODA_GUARDED_BY(mu);
    std::uint32_t tid = 0;
  };

  ThreadBuffer& local_buffer() ODA_EXCLUDES(mu_);

  const std::uint64_t tracer_id_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> capacity_{1 << 16};
  mutable Mutex mu_ ODA_ACQUIRED_AFTER(lock_order::trace)
      ODA_ACQUIRED_BEFORE(lock_order::log);  // guards buffers_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ ODA_GUARDED_BY(mu_);
  std::uint32_t next_tid_ ODA_GUARDED_BY(mu_) = 1;
};

/// RAII causal span: on entry joins the thread's active trace (or roots a
/// new one), installs itself as the current context, and on exit restores
/// the parent and records into whichever sinks are armed. Prefer the
/// ODA_TRACE_SPAN macro, which compiles out under ODA_TRACING=OFF.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "oda")
      : name_(name), category_(category) {
    // relaxed: an advisory sink mask; a late-observed toggle only means one
    // more or fewer event — no data is guarded by it.
    const unsigned mode = detail::g_trace_mode.load(std::memory_order_relaxed);
    if (mode == 0) return;  // the disabled hot path: exactly this one load
    mode_ = mode;
    start_us_ = Tracer::global().now_us();
    parent_ = current_trace_context();
    ctx_.trace_id = parent_.active() ? parent_.trace_id : next_trace_id();
    ctx_.span_id = next_trace_id();
    exchange_trace_context(ctx_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (mode_ == 0) return;
    exchange_trace_context(parent_);
    detail::finish_span(name_, category_, start_us_, ctx_, parent_.span_id,
                        mode_);
  }

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
  unsigned mode_ = 0;
  TraceContext parent_;
  TraceContext ctx_;
};

/// Records a zero-duration instant event under the current span (trace ids
/// inherited from the thread's context). Prefer the ODA_TRACE_INSTANT macro.
inline void trace_instant(const char* name, const char* category) {
  // relaxed: see TraceSpan — advisory sink mask.
  const unsigned mode = detail::g_trace_mode.load(std::memory_order_relaxed);
  if (mode != 0) detail::emit_instant(name, category, mode);
}

}  // namespace oda::obs

#define ODA_TRACE_CONCAT_INNER(a, b) a##b
#define ODA_TRACE_CONCAT(a, b) ODA_TRACE_CONCAT_INNER(a, b)

#if ODA_TRACING_ENABLED
/// Traces the enclosing scope as a span named `name` (a string literal) in
/// layer `category`. Compiles to nothing when ODA_TRACING=OFF.
#define ODA_TRACE_SPAN_CAT(name, category)                 \
  ::oda::obs::TraceSpan ODA_TRACE_CONCAT(oda_trace_span_, \
                                         __LINE__)((name), (category))
/// Marks a point occurrence (retry, state flip) inside the current span.
#define ODA_TRACE_INSTANT_CAT(name, category) \
  ::oda::obs::trace_instant((name), (category))
#else
#define ODA_TRACE_SPAN_CAT(name, category) static_cast<void>(0)
#define ODA_TRACE_INSTANT_CAT(name, category) static_cast<void>(0)
#endif

#define ODA_TRACE_SPAN(name) ODA_TRACE_SPAN_CAT(name, "oda")
#define ODA_TRACE_INSTANT(name) ODA_TRACE_INSTANT_CAT(name, "oda")
