#include "obs/exposition.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "obs/trace.hpp"

namespace oda::obs {

namespace {

/// Appends {k="v",...} (or nothing for an empty set) to out.
void append_label_block(std::string& out, const LabelSet& labels,
                        const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += escape_label_value(extra_value);
    out += '"';
  }
  out += '}';
}

void append_sample(std::string& out, const std::string& name,
                   const LabelSet& labels, double value,
                   const std::string& extra_key = "",
                   const std::string& extra_value = "",
                   const std::string& exemplar_suffix = "") {
  out += name;
  append_label_block(out, labels, extra_key, extra_value);
  out += ' ';
  out += format_sample_value(value);
  out += exemplar_suffix;  // OpenMetrics " # {trace_id=\"..\"} value" or ""
  out += '\n';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON number: NaN/Inf are not representable, map them to null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return format_sample_value(v);
}

void append_json_labels(std::ostringstream& out, const LabelSet& labels) {
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
  }
  out << '}';
}

}  // namespace

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string escape_help_text(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_sample_value(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  // Counters and bucket counts are integral doubles; print them without an
  // exponent so the output stays greppable and diff-friendly.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  // Shortest representation that round-trips: le="1e-06" beats
  // le="9.9999999999999995e-07" for human eyes and stays exact.
  char buf[64];
  for (int digits = 6; digits <= std::numeric_limits<double>::max_digits10;
       ++digits) {
    std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& fam : snapshot.families) {
    out += "# HELP ";
    out += fam.name;
    out += ' ';
    out += escape_help_text(fam.help);
    out += '\n';
    out += "# TYPE ";
    out += fam.name;
    out += ' ';
    out += to_string(fam.type);
    out += '\n';
    for (const auto& v : fam.values) {
      append_sample(out, fam.name, v.labels, v.value);
    }
    for (const auto& h : fam.histograms) {
      // The exemplar (if any) rides on the smallest bucket that contains
      // its value, in OpenMetrics syntax: `... # {trace_id="<hex>"} value`.
      const bool has_exemplar = h.exemplar_trace_id != 0;
      std::size_t exemplar_bucket = h.bounds.size();  // +Inf by default
      std::string exemplar;
      if (has_exemplar) {
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
          if (h.exemplar_value <= h.bounds[b]) {
            exemplar_bucket = b;
            break;
          }
        }
        exemplar = " # {trace_id=\"" + trace_id_hex(h.exemplar_trace_id) +
                   "\"} " + format_sample_value(h.exemplar_value);
      }
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bounds.size(); ++b) {
        cumulative += h.counts[b];
        append_sample(out, fam.name + "_bucket", h.labels,
                      static_cast<double>(cumulative), "le",
                      format_sample_value(h.bounds[b]),
                      b == exemplar_bucket ? exemplar : "");
      }
      // The +Inf bucket is cumulative over everything == the total count.
      append_sample(out, fam.name + "_bucket", h.labels,
                    static_cast<double>(h.count), "le", "+Inf",
                    exemplar_bucket == h.bounds.size() ? exemplar : "");
      append_sample(out, fam.name + "_sum", h.labels, h.sum);
      append_sample(out, fam.name + "_count", h.labels,
                    static_cast<double>(h.count));
    }
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"families\":[";
  bool first_fam = true;
  for (const auto& fam : snapshot.families) {
    if (!first_fam) out << ',';
    first_fam = false;
    out << "{\"name\":\"" << json_escape(fam.name) << "\",\"type\":\""
        << to_string(fam.type) << "\",\"help\":\"" << json_escape(fam.help)
        << '"';
    if (fam.type == MetricType::kHistogram) {
      out << ",\"histograms\":[";
      bool first = true;
      for (const auto& h : fam.histograms) {
        if (!first) out << ',';
        first = false;
        out << "{\"labels\":";
        append_json_labels(out, h.labels);
        out << ",\"bounds\":[";
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
          if (b != 0) out << ',';
          out << json_number(h.bounds[b]);
        }
        out << "],\"counts\":[";
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
          if (b != 0) out << ',';
          out << h.counts[b];
        }
        out << "],\"sum\":" << json_number(h.sum) << ",\"count\":" << h.count;
        if (h.exemplar_trace_id != 0) {
          out << ",\"exemplar\":{\"value\":" << json_number(h.exemplar_value)
              << ",\"trace_id\":\"" << trace_id_hex(h.exemplar_trace_id)
              << "\"}";
        }
        out << '}';
      }
      out << ']';
    } else {
      out << ",\"series\":[";
      bool first = true;
      for (const auto& v : fam.values) {
        if (!first) out << ',';
        first = false;
        out << "{\"labels\":";
        append_json_labels(out, v.labels);
        out << ",\"value\":" << json_number(v.value) << '}';
      }
      out << ']';
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace oda::obs
