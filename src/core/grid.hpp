// The 4x4 framework grid made operational: a registry of ODA capabilities
// classified by (pillar, type) cells, with the analyses the paper performs
// on top of it — coverage and gap analysis (Sec. I: "show areas that are
// rich, as well as gaps"), similarity between systems, single- vs
// multi-pillar classification (Sec. V-B), and staged-roadmap suggestions
// (Sec. I: "staged roadmaps in planning for HPC ODA systems").
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/pillars.hpp"

namespace oda::core {

struct GridCell {
  Pillar pillar{};
  AnalyticsType type{};

  auto operator<=>(const GridCell&) const = default;
};

std::string to_string(const GridCell& cell);

/// One ODA capability (a component of an ODA system) and its classification.
struct CapabilityDescriptor {
  std::string id;           // unique, e.g. "kpi.pue"
  std::string name;         // human-readable
  std::string description;
  std::vector<GridCell> cells;           // usually one; may span several
  std::vector<std::string> inputs;       // sensor patterns / data consumed
  std::vector<std::string> outputs;      // what it produces
  std::vector<std::string> knobs;        // actuators written (prescriptive)
  std::vector<int> references;           // paper reference numbers, if surveyed

  bool occupies(const GridCell& cell) const;
  bool multi_pillar() const;
  bool multi_type() const;
};

struct CoverageReport {
  std::size_t total_capabilities = 0;
  std::size_t occupied_cells = 0;      // of the 16
  std::vector<GridCell> gaps;          // empty cells
  /// Capability count per cell, indexed [type][pillar].
  std::array<std::array<std::size_t, kPillarCount>, kTypeCount> counts{};
};

/// Suggested next capability for a staged roadmap.
struct RoadmapSuggestion {
  Pillar pillar{};
  AnalyticsType next_type{};
  std::string rationale;
};

class FrameworkGrid {
 public:
  void register_capability(CapabilityDescriptor descriptor);
  std::size_t size() const { return capabilities_.size(); }
  const std::vector<CapabilityDescriptor>& capabilities() const {
    return capabilities_;
  }
  const CapabilityDescriptor& at(const std::string& id) const;
  bool contains(const std::string& id) const;

  /// Capabilities occupying a cell.
  std::vector<const CapabilityDescriptor*> in_cell(const GridCell& cell) const;
  CoverageReport coverage() const;

  /// Jaccard similarity of the cell sets of two capabilities/systems.
  double similarity(const std::string& id_a, const std::string& id_b) const;

  /// Roadmap: for each pillar, the least-sophisticated analytics type not
  /// yet covered (the staged descriptive→prescriptive progression).
  std::vector<RoadmapSuggestion> roadmap() const;

  /// Renders the grid as a table (cells list capability names) — the shape
  /// of the paper's Table I.
  std::string render(const std::string& title,
                     std::size_t max_per_cell = 4) const;

  /// Renders the staged-roadmap suggestions as a planning report — the
  /// "staged roadmaps in planning for HPC ODA systems" use the paper
  /// motivates in Sec. I.
  std::string render_roadmap() const;

 private:
  std::vector<CapabilityDescriptor> capabilities_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace oda::core
