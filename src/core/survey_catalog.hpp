// Machine-readable encoding of the paper's literature survey: every use
// case of Table I with its references and grid cell, plus the bibliography
// metadata needed to render and analyze it. Regenerating Table I from this
// catalog — through the same FrameworkGrid machinery a user would apply to
// their own systems — is experiment T1 (see DESIGN.md).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/grid.hpp"

namespace oda::core {

/// One surveyed work cited by the paper.
struct SurveyReference {
  int number = 0;          // the paper's [n]
  std::string authors;     // first author et al.
  std::string venue;
  int year = 0;
};

/// One use-case bullet of Table I.
struct SurveyUseCase {
  std::string description;     // bullet text
  std::vector<int> references;
  GridCell cell{};
};

class SurveyCatalog {
 public:
  /// Builds the full catalog exactly as published in Table I.
  static SurveyCatalog table1();

  const std::vector<SurveyUseCase>& use_cases() const { return use_cases_; }
  const std::map<int, SurveyReference>& references() const { return refs_; }

  std::vector<SurveyUseCase> in_cell(const GridCell& cell) const;
  /// References appearing in more than one cell (multi-cell systems such as
  /// warm-water cooling [12] or PowerStack [41]).
  std::vector<int> multi_cell_references() const;
  /// Distinct references cited anywhere in the table.
  std::size_t reference_count() const;

  /// Loads every use case into a FrameworkGrid (one capability per bullet).
  FrameworkGrid to_grid() const;

  /// Renders Table I in the paper's layout: prescriptive row on top, one
  /// bullet per use case with its reference numbers.
  std::string render_table1() const;

  /// Survey statistics the paper discusses: per-cell counts, per-pillar and
  /// per-type totals.
  std::string render_statistics() const;

 private:
  void add(AnalyticsType type, Pillar pillar, std::string description,
           std::vector<int> references);
  void add_reference(int number, std::string authors, std::string venue,
                     int year);

  std::vector<SurveyUseCase> use_cases_;
  std::map<int, SurveyReference> refs_;
};

}  // namespace oda::core
