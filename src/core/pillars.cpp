#include "core/pillars.hpp"

#include "common/error.hpp"

namespace oda::core {

namespace {

constexpr std::array<PillarTraits, kPillarCount> kPillarTraits = {{
    {Pillar::kBuildingInfrastructure, "building-infrastructure",
     "Support infrastructure needed to run the HPC systems and the data "
     "center as a whole: cooling and power distribution machinery.",
     "cooling loop, chiller, cooling tower, pumps, PDUs/UPS, utility meter"},
    {Pillar::kSystemHardware, "system-hardware",
     "Hardware components of the HPC system: boards and firmware, CPUs, "
     "GPUs, memory, system-internal cooling, network equipment.",
     "compute nodes, CPUs/GPUs, node fans, NICs, rack uplinks"},
    {Pillar::kSystemSoftware, "system-software",
     "System-level software stack: management software, resource manager "
     "and scheduler, node OS, tools and libraries.",
     "batch scheduler, job queue, placement policy, OS noise sources"},
    {Pillar::kApplications, "applications",
     "Individual workloads and the workload mix; the unit of work an HPC "
     "system exists to execute.",
     "user jobs, job phases, tunable application parameters"},
}};

constexpr std::array<TypeTraits, kTypeCount> kTypeTraits = {{
    {AnalyticsType::kDescriptive, "descriptive", "What happened?",
     Insight::kHindsight, false, 1, 1,
     "normalization, aggregation, KPIs, dashboards, threshold alerts"},
    {AnalyticsType::kDiagnostic, "diagnostic",
     "Why did it happen? What problem is this a symptom of?",
     Insight::kInsight, false, 2, 2,
     "anomaly detection, root-cause analysis, fingerprinting, classification"},
    {AnalyticsType::kPredictive, "predictive",
     "What will happen next?", Insight::kForesight, true, 3, 3,
     "forecasting, failure prediction, runtime prediction, what-if simulation"},
    {AnalyticsType::kPrescriptive, "prescriptive",
     "What is the best way to manage my resources?", Insight::kForesight,
     true, 4, 4,
     "optimization, control policies, auto-tuning, recommendation systems"},
}};

}  // namespace

const PillarTraits& traits(Pillar p) {
  return kPillarTraits.at(static_cast<std::size_t>(p));
}

const TypeTraits& traits(AnalyticsType t) {
  return kTypeTraits.at(static_cast<std::size_t>(t));
}

const char* to_string(Pillar p) { return traits(p).name; }
const char* to_string(AnalyticsType t) { return traits(t).name; }

const char* to_string(Insight i) {
  switch (i) {
    case Insight::kHindsight: return "hindsight";
    case Insight::kInsight: return "insight";
    case Insight::kForesight: return "foresight";
  }
  return "?";
}

Pillar pillar_from_string(const std::string& name) {
  for (const auto& t : kPillarTraits) {
    if (name == t.name) return t.pillar;
  }
  throw ContractError("unknown pillar: " + name);
}

AnalyticsType type_from_string(const std::string& name) {
  for (const auto& t : kTypeTraits) {
    if (name == t.name) return t.type;
  }
  throw ContractError("unknown analytics type: " + name);
}

}  // namespace oda::core
