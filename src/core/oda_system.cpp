#include "core/oda_system.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "common/table.hpp"

namespace oda::core {

bool OdaSystem::multi_pillar() const {
  std::set<Pillar> pillars;
  for (const auto& c : cells) pillars.insert(c.pillar);
  return pillars.size() > 1;
}

bool OdaSystem::multi_type() const {
  std::set<AnalyticsType> types;
  for (const auto& c : cells) types.insert(c.type);
  return types.size() > 1;
}

std::size_t OdaSystem::discipline_count() const {
  std::set<AnalyticsType> types;
  for (const auto& c : cells) types.insert(c.type);
  return types.size();
}

std::vector<OdaSystem> published_example_systems() {
  using P = Pillar;
  using T = AnalyticsType;
  std::vector<OdaSystem> systems;

  systems.push_back(
      {"ENI anomaly response", "ENI Green Data Center, Pavia",
       "Diagnoses infrastructure anomalies (aided by periodic stress tests) "
       "and prescribes cost-effective cooling set-point responses.",
       {{P::kBuildingInfrastructure, T::kDiagnostic},
        {P::kBuildingInfrastructure, T::kPrescriptive}},
       {39}});

  systems.push_back(
      {"PowerStack", "multi-site initiative",
       "Cross-pillar HPC power management: predictive models feeding "
       "prescriptive scheduling, hardware and software decisions.",
       {{P::kSystemHardware, T::kPredictive},
        {P::kSystemHardware, T::kPrescriptive},
        {P::kSystemSoftware, T::kPredictive},
        {P::kSystemSoftware, T::kPrescriptive},
        {P::kApplications, T::kPrescriptive}},
       {41}});

  systems.push_back(
      {"LLNL utility notification", "Lawrence Livermore National Laboratory",
       "Fourier analysis of historical facility power to forecast spikes "
       "beyond 750 kW / 15 min and notify the utility ahead of time.",
       {{P::kBuildingInfrastructure, T::kDescriptive},
        {P::kBuildingInfrastructure, T::kPredictive}},
       {72}});

  systems.push_back(
      {"DRAS-CQSim", "Illinois Institute of Technology",
       "Reinforcement-learning scheduling: workload prediction plus "
       "KPI-aware dispatching policies.",
       {{P::kSystemSoftware, T::kPredictive},
        {P::kSystemSoftware, T::kPrescriptive}},
       {23}});

  systems.push_back(
      {"ClusterCockpit", "FAU Erlangen",
       "Web dashboards for job-specific performance monitoring.",
       {{P::kApplications, T::kDescriptive}},
       {5}});

  systems.push_back(
      {"GEOPM", "Intel / community",
       "Runtime power management: predicts CPU instruction mixes and tunes "
       "frequencies during application phases.",
       {{P::kSystemHardware, T::kPredictive},
        {P::kSystemHardware, T::kPrescriptive}},
       {11}});

  return systems;
}

std::string render_figure3(const std::vector<OdaSystem>& systems) {
  TextTable table({"", "Building Infrastructure", "System Hardware",
                   "System Software", "Applications"});
  table.set_title("FIGURE 3: COMPLEX ODA SYSTEMS CATEGORIZED WITH THE FRAMEWORK");

  for (auto it = kAllTypes.rbegin(); it != kAllTypes.rend(); ++it) {
    std::vector<std::string> row{to_string(*it)};
    for (const auto& pillar : kAllPillars) {
      std::string marks;
      for (std::size_t s = 0; s < systems.size(); ++s) {
        const GridCell cell{pillar, *it};
        const bool occupies =
            std::find(systems[s].cells.begin(), systems[s].cells.end(), cell) !=
            systems[s].cells.end();
        if (occupies) {
          if (!marks.empty()) marks += " ";
          marks += static_cast<char>('A' + s);
        }
      }
      row.push_back(marks);
    }
    table.add_row(std::move(row));
  }

  std::ostringstream out;
  out << table.render();
  out << "legend:\n";
  for (std::size_t s = 0; s < systems.size(); ++s) {
    out << "  " << static_cast<char>('A' + s) << " = " << systems[s].name
        << " (" << systems[s].site << ")";
    if (systems[s].multi_pillar()) out << " [multi-pillar]";
    if (systems[s].multi_type()) out << " [multi-type]";
    out << "\n";
  }
  return out.str();
}

double system_similarity(const OdaSystem& a, const OdaSystem& b) {
  const std::set<GridCell> sa(a.cells.begin(), a.cells.end());
  const std::set<GridCell> sb(b.cells.begin(), b.cells.end());
  std::size_t inter = 0;
  for (const auto& c : sa) inter += sb.count(c);
  const std::size_t uni = sa.size() + sb.size() - inter;
  return uni ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
}

double comprehensiveness(const OdaSystem& system) {
  const std::set<GridCell> cells(system.cells.begin(), system.cells.end());
  return static_cast<double>(cells.size()) /
         static_cast<double>(kPillarCount * kTypeCount);
}

std::string render_similarity_matrix(const std::vector<OdaSystem>& systems) {
  std::vector<std::string> headers{""};
  for (std::size_t s = 0; s < systems.size(); ++s) {
    headers.push_back(std::string(1, static_cast<char>('A' + s)));
  }
  TextTable table(headers);
  table.set_title("PAIRWISE GRID-LOCATION SIMILARITY (Jaccard over cells)");
  for (std::size_t i = 0; i < systems.size(); ++i) {
    std::vector<std::string> row{std::string(1, static_cast<char>('A' + i)) +
                                 " " + systems[i].name};
    for (std::size_t j = 0; j < systems.size(); ++j) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f",
                    system_similarity(systems[i], systems[j]));
      row.push_back(buf);
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

SystemCensus census(const std::vector<OdaSystem>& systems) {
  SystemCensus c;
  c.total = systems.size();
  for (const auto& s : systems) {
    const bool mp = s.multi_pillar();
    const bool mt = s.multi_type();
    if (!mp && !mt) ++c.single_cell;
    else if (mt && !mp) ++c.multi_type_only;
    else if (mp && !mt) ++c.multi_pillar_only;
    else ++c.multi_both;
  }
  return c;
}

}  // namespace oda::core
