#include "core/grid.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/table.hpp"

namespace oda::core {

std::string to_string(const GridCell& cell) {
  return std::string(to_string(cell.type)) + "/" + to_string(cell.pillar);
}

bool CapabilityDescriptor::occupies(const GridCell& cell) const {
  return std::find(cells.begin(), cells.end(), cell) != cells.end();
}

bool CapabilityDescriptor::multi_pillar() const {
  std::set<Pillar> pillars;
  for (const auto& c : cells) pillars.insert(c.pillar);
  return pillars.size() > 1;
}

bool CapabilityDescriptor::multi_type() const {
  std::set<AnalyticsType> types;
  for (const auto& c : cells) types.insert(c.type);
  return types.size() > 1;
}

void FrameworkGrid::register_capability(CapabilityDescriptor descriptor) {
  ODA_REQUIRE(!descriptor.id.empty(), "capability needs an id");
  ODA_REQUIRE(!descriptor.cells.empty(), "capability must occupy a cell");
  ODA_REQUIRE(index_.count(descriptor.id) == 0,
              "duplicate capability id: " + descriptor.id);
  index_[descriptor.id] = capabilities_.size();
  capabilities_.push_back(std::move(descriptor));
}

const CapabilityDescriptor& FrameworkGrid::at(const std::string& id) const {
  const auto it = index_.find(id);
  ODA_REQUIRE(it != index_.end(), "unknown capability: " + id);
  return capabilities_[it->second];
}

bool FrameworkGrid::contains(const std::string& id) const {
  return index_.count(id) != 0;
}

std::vector<const CapabilityDescriptor*> FrameworkGrid::in_cell(
    const GridCell& cell) const {
  std::vector<const CapabilityDescriptor*> out;
  for (const auto& c : capabilities_) {
    if (c.occupies(cell)) out.push_back(&c);
  }
  return out;
}

CoverageReport FrameworkGrid::coverage() const {
  CoverageReport report;
  report.total_capabilities = capabilities_.size();
  for (const auto& type : kAllTypes) {
    for (const auto& pillar : kAllPillars) {
      const GridCell cell{pillar, type};
      const auto n = in_cell(cell).size();
      report.counts[static_cast<std::size_t>(type)]
                   [static_cast<std::size_t>(pillar)] = n;
      if (n > 0) {
        ++report.occupied_cells;
      } else {
        report.gaps.push_back(cell);
      }
    }
  }
  return report;
}

double FrameworkGrid::similarity(const std::string& id_a,
                                 const std::string& id_b) const {
  const auto& a = at(id_a);
  const auto& b = at(id_b);
  std::set<GridCell> sa(a.cells.begin(), a.cells.end());
  std::set<GridCell> sb(b.cells.begin(), b.cells.end());
  std::size_t inter = 0;
  for (const auto& c : sa) inter += sb.count(c);
  const std::size_t uni = sa.size() + sb.size() - inter;
  return uni ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
}

std::vector<RoadmapSuggestion> FrameworkGrid::roadmap() const {
  std::vector<RoadmapSuggestion> out;
  const auto report = coverage();
  for (const auto& pillar : kAllPillars) {
    for (const auto& type : kAllTypes) {  // in staged order
      if (report.counts[static_cast<std::size_t>(type)]
                       [static_cast<std::size_t>(pillar)] == 0) {
        RoadmapSuggestion s;
        s.pillar = pillar;
        s.next_type = type;
        s.rationale =
            std::string("pillar '") + to_string(pillar) + "' lacks " +
            to_string(type) + " analytics; the staged model suggests adding "
            "it before more sophisticated types (" +
            traits(type).question + ")";
        out.push_back(std::move(s));
        break;  // only the first missing stage per pillar
      }
    }
  }
  return out;
}

std::string FrameworkGrid::render_roadmap() const {
  const auto suggestions = roadmap();
  TextTable table({"pillar", "next stage", "question it will answer",
                   "typical techniques"});
  table.set_title("STAGED ODA ROADMAP (first missing analytics stage per pillar)");
  table.set_max_width(2, 30);
  table.set_max_width(3, 36);
  if (suggestions.empty()) {
    table.add_row({"(all pillars)", "-",
                   "every cell of the framework is already covered", "-"});
  }
  for (const auto& s : suggestions) {
    const auto& t = traits(s.next_type);
    table.add_row({to_string(s.pillar), t.name, t.question,
                   t.typical_techniques});
  }
  return table.render();
}

std::string FrameworkGrid::render(const std::string& title,
                                  std::size_t max_per_cell) const {
  TextTable table({"", to_string(Pillar::kBuildingInfrastructure),
                   to_string(Pillar::kSystemHardware),
                   to_string(Pillar::kSystemSoftware),
                   to_string(Pillar::kApplications)});
  table.set_title(title);
  for (std::size_t c = 1; c <= 4; ++c) table.set_max_width(c, 30);

  // Prescriptive at the top, as in the paper's Table I.
  for (auto it = kAllTypes.rbegin(); it != kAllTypes.rend(); ++it) {
    std::vector<std::string> row{to_string(*it)};
    for (const auto& pillar : kAllPillars) {
      const auto caps = in_cell({pillar, *it});
      std::string cell_text;
      for (std::size_t i = 0; i < caps.size() && i < max_per_cell; ++i) {
        if (i) cell_text += "\n";
        cell_text += "- " + caps[i]->name;
      }
      if (caps.size() > max_per_cell) {
        cell_text += "\n(+" + std::to_string(caps.size() - max_per_cell) +
                     " more)";
      }
      row.push_back(cell_text);
    }
    table.add_row(std::move(row));
    table.add_separator();
  }
  return table.render();
}

}  // namespace oda::core
