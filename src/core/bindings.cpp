#include "core/bindings.hpp"

#include "common/error.hpp"

namespace oda::core {

FrameworkGrid implemented_capabilities() {
  using P = Pillar;
  using T = AnalyticsType;
  FrameworkGrid grid;
  const auto add = [&grid](const char* id, const char* name, const char* desc,
                           std::vector<GridCell> cells,
                           std::vector<std::string> inputs,
                           std::vector<std::string> outputs,
                           std::vector<std::string> knobs = {}) {
    CapabilityDescriptor d;
    d.id = id;
    d.name = name;
    d.description = desc;
    d.cells = std::move(cells);
    d.inputs = std::move(inputs);
    d.outputs = std::move(outputs);
    d.knobs = std::move(knobs);
    grid.register_capability(std::move(d));
  };

  // ---- Descriptive ----------------------------------------------------------
  add("kpi.pue", "PUE calculation [analytics/descriptive/kpi]",
      "Interval Power Usage Effectiveness from facility power sensors.",
      {{P::kBuildingInfrastructure, T::kDescriptive}},
      {"facility/total_power", "cluster/it_power"}, {"PueReport"});
  add("dash.facility", "Facility dashboard [analytics/descriptive/dashboard]",
      "Power/cooling/weather trends with sparklines and interval KPIs.",
      {{P::kBuildingInfrastructure, T::kDescriptive}},
      {"facility/*", "weather/*"}, {"text dashboard"});
  add("kpi.itue", "ITUE/TUE calculation [analytics/descriptive/kpi]",
      "IT-internal overhead efficiency from node fan/power telemetry.",
      {{P::kSystemHardware, T::kDescriptive}},
      {"rack*/node*/fan_speed", "cluster/it_power"}, {"ItueReport"});
  add("kpi.sie", "System Information Entropy [analytics/descriptive/kpi]",
      "Transition entropy over discretized system state (LogSCAN-style).",
      {{P::kSystemHardware, T::kDescriptive}},
      {"configurable sensor set"}, {"SieReport"});
  add("dash.system", "System dashboard [analytics/descriptive/dashboard]",
      "Per-rack quantile transport of node power/temperature/utilization.",
      {{P::kSystemHardware, T::kDescriptive}},
      {"rack*/node*/*"}, {"text dashboard"});
  add("kpi.slowdown", "Slowdown calculation [analytics/descriptive/kpi]",
      "Mean/bounded slowdown and wait statistics from job records.",
      {{P::kSystemSoftware, T::kDescriptive}},
      {"scheduler job records"}, {"SlowdownReport"});
  add("dash.scheduler", "Scheduler dashboard [analytics/descriptive/dashboard]",
      "Queue/utilization trends plus job outcome accounting.",
      {{P::kSystemSoftware, T::kDescriptive}},
      {"scheduler/*", "job records"}, {"text dashboard"});
  add("kpi.roofline", "Roofline model [analytics/descriptive/kpi]",
      "Operating point of a kernel against compute/bandwidth ceilings.",
      {{P::kApplications, T::kDescriptive}},
      {"kernel flops/bytes"}, {"RooflinePoint"});
  add("dash.jobs", "Job dashboard [analytics/descriptive/dashboard]",
      "Per-job runtime/wait/energy table over completed jobs.",
      {{P::kApplications, T::kDescriptive}},
      {"job records"}, {"text dashboard"});

  // ---- Diagnostic -----------------------------------------------------------
  add("diag.infra", "Infrastructure anomaly detection [analytics/diagnostic/anomaly]",
      "Streaming detectors (z-score/MAD/EWMA/stuck) on pump, loop and plant "
      "sensors.",
      {{P::kBuildingInfrastructure, T::kDiagnostic}},
      {"facility/*"}, {"anomaly scores", "alerts"});
  add("diag.stress", "Infrastructure stress testing [analytics/diagnostic/stress_test]",
      "Active perturb-observe protocol: step the supply setpoint, fit the "
      "loop's response time constant, flag degradation vs baseline.",
      {{P::kBuildingInfrastructure, T::kDiagnostic}},
      {"facility/supply_temp"}, {"StressTestResult"},
      {"facility/supply_setpoint"});
  add("diag.crisis", "Crisis fingerprinting [analytics/diagnostic/fingerprint]",
      "Facility-state signatures matched against labeled incident classes.",
      {{P::kBuildingInfrastructure, T::kDiagnostic}},
      {"facility/*", "weather/*"}, {"incident label"});
  add("diag.node", "Node anomaly monitor [analytics/diagnostic/anomaly]",
      "Isolation-forest and PCA reconstruction scoring of per-node window "
      "features.",
      {{P::kSystemHardware, T::kDiagnostic}},
      {"rack*/node*/*"}, {"per-node verdicts"});
  add("diag.rca", "Root-cause analysis [analytics/diagnostic/rootcause]",
      "Dependency-graph blame ranking over symptomatic components.",
      {{P::kSystemHardware, T::kDiagnostic}},
      {"anomaly verdicts"}, {"ranked causes"});
  add("diag.contention", "Network contention diagnosis [analytics/diagnostic/contention]",
      "Saturated-uplink detection with aggressor/victim attribution.",
      {{P::kSystemHardware, T::kDiagnostic}},
      {"network/*", "rack*/node*/net_util", "placements"}, {"ContentionReport"});
  add("diag.noise", "OS noise analysis [analytics/diagnostic/software]",
      "FWQ trace analysis: noise fraction and dominant interference period.",
      {{P::kSystemSoftware, T::kDiagnostic}},
      {"FWQ benchmark trace"}, {"NoiseReport"});
  add("diag.leak", "Memory-leak detection [analytics/diagnostic/software]",
      "Theil-Sen slope test on resident memory with OOM projection.",
      {{P::kSystemSoftware, T::kDiagnostic}},
      {"rack*/node*/mem_used"}, {"LeakVerdict"});
  add("diag.appfp", "Application fingerprinting [analytics/diagnostic/fingerprint]",
      "kNN/random-forest classification of job telemetry signatures "
      "(crypto-miner detection).",
      {{P::kApplications, T::kDiagnostic}},
      {"rack*/node*/{cpu,mem,net,io}*", "job records"}, {"class label"});
  add("diag.bound", "Boundedness classification [analytics/diagnostic/software]",
      "Compute/memory/network/IO-bound labeling of running jobs.",
      {{P::kApplications, T::kDiagnostic}},
      {"rack*/node*/*_util"}, {"Boundedness"});

  // ---- Predictive -----------------------------------------------------------
  add("pred.kpi", "Facility KPI forecasting [analytics/predictive/forecaster]",
      "Holt-Winters/AR forecasting of PUE and facility power with rolling "
      "backtests.",
      {{P::kBuildingInfrastructure, T::kPredictive}},
      {"facility/pue", "facility/total_power"}, {"forecast paths"});
  add("pred.spectral", "Spectral power forecasting [analytics/predictive/spectral]",
      "FFT decomposition + extrapolation with the 750 kW/15 min utility "
      "notification rule (LLNL use case).",
      {{P::kBuildingInfrastructure, T::kPredictive},
       {P::kBuildingInfrastructure, T::kDescriptive}},
      {"facility/total_power"}, {"PowerSwingEvent list"});
  add("pred.sensors", "Hardware sensor forecasting [analytics/predictive/forecaster]",
      "Per-sensor forecaster suite with skill-vs-persistence scoring.",
      {{P::kSystemHardware, T::kPredictive}},
      {"rack*/node*/power", "rack*/node*/cpu_temp"}, {"forecast paths"});
  add("pred.failure", "Failure prediction [analytics/predictive/failure]",
      "Degradation extrapolation + Weibull hazard estimation.",
      {{P::kSystemHardware, T::kPredictive}},
      {"degradation signals", "failure history"}, {"FailureProjection"});
  add("pred.whatif", "Scheduler what-if simulation [analytics/predictive/whatif]",
      "Policy replay of job traces (FCFS vs EASY) without cluster physics.",
      {{P::kSystemSoftware, T::kPredictive}},
      {"job trace"}, {"WhatIfResult"});
  add("pred.workload", "Workload forecasting [analytics/predictive/workload_forecast]",
      "Hourly arrival forecasting with daily-profile seasonality.",
      {{P::kSystemSoftware, T::kPredictive}},
      {"submit times"}, {"arrival forecast"});
  add("pred.runtime", "Job runtime prediction [analytics/predictive/jobs]",
      "Per-user history + kNN estimation capped by the walltime request.",
      {{P::kApplications, T::kPredictive}},
      {"job records", "submission features"}, {"runtime estimate"});
  add("pred.energy", "Job resource prediction [analytics/predictive/jobs]",
      "Node-power/energy estimation from submission features.",
      {{P::kApplications, T::kPredictive}},
      {"job records"}, {"power/energy estimate"});

  // ---- Prescriptive ---------------------------------------------------------
  add("presc.setpoint", "Cooling set-point optimizer [analytics/prescriptive/cooling]",
      "Online hill climbing of the supply-water temperature against "
      "measured facility power.",
      {{P::kBuildingInfrastructure, T::kPrescriptive}},
      {"facility/total_power", "rack*/node*/cpu_temp"},
      {"setpoint moves"}, {"facility/supply_setpoint"});
  add("presc.coolmode", "Cooling mode switcher [analytics/prescriptive/cooling]",
      "Chiller vs free-cooling selection; proactive variant uses wet-bulb "
      "forecasts.",
      {{P::kBuildingInfrastructure, T::kPrescriptive}},
      {"weather/wetbulb_temp"}, {"mode switches"}, {"facility/cooling_mode"});
  add("presc.response", "Anomaly response policy [analytics/prescriptive/response]",
      "Diagnosis-to-action mapping (recommend or automatic) with audit log.",
      {{P::kBuildingInfrastructure, T::kPrescriptive}},
      {"diagnoses"}, {"ResponseAction log"},
      {"facility/pump_speed", "facility/supply_setpoint"});
  add("presc.dvfs", "DVFS governor [analytics/prescriptive/dvfs]",
      "Energy and thermal-cap frequency control; proactive variant acts on "
      "temperature forecasts.",
      {{P::kSystemHardware, T::kPrescriptive}},
      {"rack*/node*/{cpu,mem}*", "rack*/node*/cpu_temp"},
      {"frequency moves"}, {"rack*/node*/freq_setpoint"});
  add("presc.powercap", "Power-cap governor [analytics/prescriptive/powercap]",
      "Fleet-wide frequency shedding under a facility power cap; plan-based "
      "variant pre-sheds on forecasts.",
      {{P::kSystemHardware, T::kPrescriptive},
       {P::kSystemSoftware, T::kPrescriptive}},
      {"facility/total_power", "rack*/node*/power"},
      {"frequency moves"}, {"rack*/node*/freq_setpoint"});
  add("presc.placement", "Thermal-aware placement [analytics/prescriptive/placement]",
      "Scheduler placement policy spreading load across cool racks "
      "(multi-pillar: software decision, infrastructure benefit).",
      {{P::kSystemSoftware, T::kPrescriptive},
       {P::kBuildingInfrastructure, T::kPrescriptive}},
      {"rack power", "free-node map"}, {"node assignments"});
  add("presc.recommend", "Code improvement recommendations [analytics/prescriptive/recommend]",
      "Telemetry-profile rule base turning boundedness/imbalance/sizing "
      "findings into prioritized developer advice.",
      {{P::kApplications, T::kPrescriptive}},
      {"rack*/node*/*_util", "job records"}, {"Recommendation list"});
  add("presc.autotune", "Application auto-tuner [analytics/prescriptive/autotune]",
      "Grid/random/Nelder-Mead/annealing search over tunable app parameters.",
      {{P::kApplications, T::kPrescriptive}},
      {"app evaluation callback"}, {"TuneResult"});

  return grid;
}

CoverageReport verify_full_coverage(const FrameworkGrid& grid) {
  const auto report = grid.coverage();
  ODA_REQUIRE(report.gaps.empty(),
              "framework grid has uncovered cells — the library no longer "
              "realizes the full 4x4 framework");
  return report;
}

}  // namespace oda::core
