// The operational realization of the framework: every analytics engine
// implemented in this library registered as a capability on the grid. The
// paper classifies *other people's* systems; this registry classifies *this
// library's* engines, proving the grid is fully covered by working code —
// each of the 16 cells backed by at least one engine, each descriptor
// pointing at the module that implements it.
#pragma once

#include "core/grid.hpp"

namespace oda::core {

/// Builds the grid of every capability implemented by this library.
FrameworkGrid implemented_capabilities();

/// Asserts full 16-cell coverage; returns the coverage report.
CoverageReport verify_full_coverage(const FrameworkGrid& grid);

}  // namespace oda::core
