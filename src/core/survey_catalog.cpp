#include "core/survey_catalog.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/table.hpp"

namespace oda::core {

void SurveyCatalog::add(AnalyticsType type, Pillar pillar,
                        std::string description, std::vector<int> references) {
  SurveyUseCase uc;
  uc.description = std::move(description);
  uc.references = std::move(references);
  uc.cell = GridCell{pillar, type};
  use_cases_.push_back(std::move(uc));
}

void SurveyCatalog::add_reference(int number, std::string authors,
                                  std::string venue, int year) {
  refs_[number] = SurveyReference{number, std::move(authors), std::move(venue), year};
}

SurveyCatalog SurveyCatalog::table1() {
  SurveyCatalog c;
  using P = Pillar;
  using T = AnalyticsType;

  // ---- Prescriptive row -----------------------------------------------------
  c.add(T::kPrescriptive, P::kBuildingInfrastructure,
        "Switching between types of cooling", {12});
  c.add(T::kPrescriptive, P::kBuildingInfrastructure,
        "Tuning of cooling machinery", {18, 37});
  c.add(T::kPrescriptive, P::kBuildingInfrastructure,
        "Responding to anomalies", {38, 39});
  c.add(T::kPrescriptive, P::kSystemHardware,
        "Cooling optimization at system level", {12});
  c.add(T::kPrescriptive, P::kSystemHardware, "CPU frequency tuning",
        {11, 24, 40});
  c.add(T::kPrescriptive, P::kSystemHardware, "Tuning of hardware knobs",
        {20, 25, 41});
  c.add(T::kPrescriptive, P::kSystemSoftware,
        "Intelligent placement of tasks and threads", {42});
  c.add(T::kPrescriptive, P::kSystemSoftware, "Plan-based scheduling", {43});
  c.add(T::kPrescriptive, P::kSystemSoftware,
        "Power and KPI-aware scheduling", {21, 22, 23});
  c.add(T::kPrescriptive, P::kApplications, "Auto-tuning of HPC applications",
        {28, 29, 41});
  c.add(T::kPrescriptive, P::kApplications,
        "Code improvement recommendations", {44});

  // ---- Predictive row -------------------------------------------------------
  c.add(T::kPredictive, P::kBuildingInfrastructure,
        "Predicting data center KPIs", {45});
  c.add(T::kPredictive, P::kBuildingInfrastructure,
        "Predicting cooling demand", {37});
  c.add(T::kPredictive, P::kBuildingInfrastructure,
        "Modelling cooling performance", {18, 46});
  c.add(T::kPredictive, P::kSystemHardware, "Forecasting hardware sensors",
        {32, 47});
  c.add(T::kPredictive, P::kSystemHardware, "Component failure prediction",
        {48});
  c.add(T::kPredictive, P::kSystemHardware,
        "Predicting CPU instruction mixes", {11});
  c.add(T::kPredictive, P::kSystemSoftware,
        "Simulating HPC systems and schedulers", {49, 50, 51});
  c.add(T::kPredictive, P::kSystemSoftware, "Predicting HPC workloads", {23});
  c.add(T::kPredictive, P::kApplications, "Predicting job durations",
        {30, 34, 35});
  c.add(T::kPredictive, P::kApplications, "Predicting job resource usage",
        {31, 52, 53});
  c.add(T::kPredictive, P::kApplications,
        "Predicting performance profiles of code regions", {24});

  // ---- Diagnostic row -------------------------------------------------------
  c.add(T::kDiagnostic, P::kBuildingInfrastructure,
        "Fingerprinting data center crises", {38});
  c.add(T::kDiagnostic, P::kBuildingInfrastructure,
        "Infrastructure anomaly detection", {54});
  c.add(T::kDiagnostic, P::kBuildingInfrastructure,
        "Infrastructure stress testing", {39});
  c.add(T::kDiagnostic, P::kSystemHardware, "Node-level anomaly detection",
        {17, 26, 47});
  c.add(T::kDiagnostic, P::kSystemHardware,
        "System-level root cause analysis", {9});
  c.add(T::kDiagnostic, P::kSystemHardware,
        "Diagnosing network contention issues", {19, 55});
  c.add(T::kDiagnostic, P::kSystemSoftware, "Diagnosing data locality issues",
        {9});
  c.add(T::kDiagnostic, P::kSystemSoftware, "Detection of software anomalies",
        {16, 56});
  c.add(T::kDiagnostic, P::kSystemSoftware, "Identifying sources of OS noise",
        {57});
  c.add(T::kDiagnostic, P::kApplications, "Application fingerprinting",
        {33, 36});
  c.add(T::kDiagnostic, P::kApplications, "Identifying performance patterns",
        {20, 31, 44});
  c.add(T::kDiagnostic, P::kApplications, "Diagnosing code-level issues",
        {15, 27});

  // ---- Descriptive row ------------------------------------------------------
  c.add(T::kDescriptive, P::kBuildingInfrastructure, "PUE calculation", {4});
  c.add(T::kDescriptive, P::kBuildingInfrastructure,
        "Facility data processing", {8, 58});
  c.add(T::kDescriptive, P::kBuildingInfrastructure,
        "Facility-level dashboards", {1, 7});
  c.add(T::kDescriptive, P::kSystemHardware, "ITUE calculation", {59});
  c.add(T::kDescriptive, P::kSystemHardware, "System performance indicators",
        {14});
  c.add(T::kDescriptive, P::kSystemHardware, "System-level dashboards", {7, 8});
  c.add(T::kDescriptive, P::kSystemSoftware, "Slowdown calculation", {60});
  c.add(T::kDescriptive, P::kSystemSoftware, "Scheduler-level dashboards",
        {61, 62});
  c.add(T::kDescriptive, P::kApplications, "Job performance models", {63});
  c.add(T::kDescriptive, P::kApplications, "Job data processing", {8});
  c.add(T::kDescriptive, P::kApplications, "Job-level dashboards", {5, 6, 10});

  // ---- Bibliography (works cited in Table I) --------------------------------
  c.add_reference(1, "Bourassa et al.", "ICPP Workshops", 2019);
  c.add_reference(4, "Yuventi & Mehdizadeh", "Energy and Buildings", 2013);
  c.add_reference(5, "Eitzinger et al. (ClusterCockpit)", "CLUSTER", 2019);
  c.add_reference(6, "Guillen et al. (PerSyst)", "Euro-Par Workshops", 2014);
  c.add_reference(7, "Bautista et al. (OMNI)", "ICPP Workshops", 2019);
  c.add_reference(8, "Schwaller et al.", "CLUSTER", 2020);
  c.add_reference(9, "Demirbaga et al. (AutoDiagn)", "IEEE TC", 2021);
  c.add_reference(10, "Adhianto et al. (HPCToolkit)", "CCPE", 2010);
  c.add_reference(11, "Eastep et al. (GEOPM)", "ISC", 2017);
  c.add_reference(12, "Jiang et al.", "ISCA", 2019);
  c.add_reference(14, "Hui et al. (LogSCAN)", "FTXS", 2018);
  c.add_reference(15, "Laguna et al.", "SRDS", 2013);
  c.add_reference(16, "Tuncer et al.", "IEEE TPDS", 2018);
  c.add_reference(17, "Borghesi et al.", "EAAI", 2019);
  c.add_reference(18, "Conficoni et al.", "DATE", 2015);
  c.add_reference(19, "Grant et al. (OVIS overtime)", "ExaMPI", 2015);
  c.add_reference(20, "Imes et al.", "ICPP", 2018);
  c.add_reference(21, "Verma et al.", "ICS", 2008);
  c.add_reference(22, "Bash & Forman", "USENIX ATC", 2007);
  c.add_reference(23, "Fan & Lan (DRAS-CQSim)", "Software Impacts", 2021);
  c.add_reference(24, "Corbalan & Brochard (EAR)", "IPDPS", 2018);
  c.add_reference(25, "Lin et al.", "IC2E", 2016);
  c.add_reference(26, "Guan & Fu", "SRDS", 2013);
  c.add_reference(27, "Shaykhislamov & Voevodin", "Procedia CS", 2018);
  c.add_reference(28, "Miceli et al. (Autotune)", "PARA", 2012);
  c.add_reference(29, "Tapus et al. (Active Harmony)", "SC", 2002);
  c.add_reference(30, "Naghshnejad & Singhal", "CLOUD", 2018);
  c.add_reference(31, "Emeras et al. (Evalix)", "JSSPP", 2015);
  c.add_reference(32, "Xue et al. (PRACTISE)", "CNSM", 2015);
  c.add_reference(33, "Ates et al. (Taxonomist)", "Euro-Par", 2018);
  c.add_reference(34, "Wyatt et al. (PRIONN)", "ICPP", 2018);
  c.add_reference(35, "McKenna et al.", "CLUSTER", 2016);
  c.add_reference(36, "DeMasi et al.", "CLHS", 2013);
  c.add_reference(37, "Kjaergaard et al.", "SmartGridComm", 2016);
  c.add_reference(38, "Bodik et al.", "EuroSys", 2010);
  c.add_reference(39, "Bortot et al.", "ICPP", 2019);
  c.add_reference(40, "Auweter et al.", "ISC", 2014);
  c.add_reference(41, "Wu et al. (PowerStack)", "CLUSTER", 2020);
  c.add_reference(42, "Li et al.", "ISPASS", 2009);
  c.add_reference(43, "Zheng et al.", "CLUSTER", 2016);
  c.add_reference(44, "Zhang et al.", "PDPTA", 2012);
  c.add_reference(45, "Shoukourian & Kranzlmueller", "FGCS", 2020);
  c.add_reference(46, "Shoukourian et al.", "IPDPS Workshops", 2017);
  c.add_reference(47, "Netti et al. (CWS)", "IPDPS", 2021);
  c.add_reference(48, "Sirbu & Babaoglu", "Cluster Computing", 2016);
  c.add_reference(49, "Galleguillos et al. (AccaSim)", "Cluster Computing", 2020);
  c.add_reference(50, "Dutot et al. (Batsim)", "JSSPP", 2015);
  c.add_reference(51, "Klusacek et al. (Alea)", "PPAM", 2019);
  c.add_reference(52, "Sirbu & Babaoglu", "Euro-Par", 2016);
  c.add_reference(53, "Matsunaga & Fortes", "CCGrid", 2010);
  c.add_reference(54, "Todd et al. (AI Ops)", "NREL/HPE TR", 2021);
  c.add_reference(55, "Jha et al.", "CLUSTER", 2018);
  c.add_reference(56, "Gustafson (Unum)", "CRC Press", 2017);
  c.add_reference(57, "Ferreira et al.", "SC", 2008);
  c.add_reference(58, "Stewart et al.", "ICPP Workshops", 2019);
  c.add_reference(59, "Patterson et al. (TUE/ITUE)", "ISC", 2013);
  c.add_reference(60, "Feitelson", "JSSPP", 2001);
  c.add_reference(61, "Chan", "PEARC", 2019);
  c.add_reference(62, "Palmer et al. (Open XDMoD)", "CiSE", 2015);
  c.add_reference(63, "Williams et al. (Roofline)", "CACM", 2009);
  return c;
}

std::vector<SurveyUseCase> SurveyCatalog::in_cell(const GridCell& cell) const {
  std::vector<SurveyUseCase> out;
  for (const auto& uc : use_cases_) {
    if (uc.cell == cell) out.push_back(uc);
  }
  return out;
}

std::vector<int> SurveyCatalog::multi_cell_references() const {
  std::map<int, std::set<GridCell>> cells_per_ref;
  for (const auto& uc : use_cases_) {
    for (int r : uc.references) cells_per_ref[r].insert(uc.cell);
  }
  std::vector<int> out;
  for (const auto& [r, cells] : cells_per_ref) {
    if (cells.size() > 1) out.push_back(r);
  }
  return out;
}

std::size_t SurveyCatalog::reference_count() const {
  std::set<int> refs;
  for (const auto& uc : use_cases_) {
    refs.insert(uc.references.begin(), uc.references.end());
  }
  return refs.size();
}

FrameworkGrid SurveyCatalog::to_grid() const {
  FrameworkGrid grid;
  std::size_t n = 0;
  for (const auto& uc : use_cases_) {
    CapabilityDescriptor d;
    d.id = "survey." + std::to_string(++n);
    d.name = uc.description;
    d.references = uc.references;
    d.cells = {uc.cell};
    grid.register_capability(std::move(d));
  }
  return grid;
}

namespace {

std::string refs_suffix(const std::vector<int>& refs) {
  std::string out = " [";
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(refs[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string SurveyCatalog::render_table1() const {
  TextTable table({"", "Building Infrastructure", "System Hardware",
                   "System Software", "Applications"});
  table.set_title(
      "TABLE I: A SERIES OF ODA EXAMPLES CATEGORIZED USING OUR FRAMEWORK");
  for (std::size_t c = 1; c <= 4; ++c) table.set_max_width(c, 28);

  for (auto it = kAllTypes.rbegin(); it != kAllTypes.rend(); ++it) {
    std::vector<std::string> row{to_string(*it)};
    for (const auto& pillar : kAllPillars) {
      std::string cell_text;
      for (const auto& uc : in_cell({pillar, *it})) {
        if (!cell_text.empty()) cell_text += "\n";
        cell_text += "- " + uc.description + refs_suffix(uc.references);
      }
      row.push_back(cell_text);
    }
    table.add_row(std::move(row));
    table.add_separator();
  }
  return table.render();
}

std::string SurveyCatalog::render_statistics() const {
  TextTable table({"analytics type", "building-infra", "sys-hardware",
                   "sys-software", "applications", "total"});
  table.set_title("SURVEY STATISTICS (use-case bullets per cell)");
  for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, Align::kRight);

  std::array<std::size_t, kPillarCount> pillar_totals{};
  for (auto it = kAllTypes.rbegin(); it != kAllTypes.rend(); ++it) {
    std::vector<std::string> row{to_string(*it)};
    std::size_t type_total = 0;
    for (const auto& pillar : kAllPillars) {
      const auto n = in_cell({pillar, *it}).size();
      row.push_back(std::to_string(n));
      type_total += n;
      pillar_totals[static_cast<std::size_t>(pillar)] += n;
    }
    row.push_back(std::to_string(type_total));
    table.add_row(std::move(row));
  }
  std::vector<std::string> totals{"total"};
  std::size_t grand = 0;
  for (const auto& pillar : kAllPillars) {
    totals.push_back(std::to_string(pillar_totals[static_cast<std::size_t>(pillar)]));
    grand += pillar_totals[static_cast<std::size_t>(pillar)];
  }
  totals.push_back(std::to_string(grand));
  table.add_separator();
  table.add_row(std::move(totals));

  std::ostringstream out;
  out << table.render();
  out << "distinct references cited in Table I: " << reference_count() << "\n";
  out << "references spanning multiple cells:";
  for (int r : multi_cell_references()) out << " [" << r << "]";
  out << "\n";
  return out.str();
}

}  // namespace oda::core
