// The two axes of the ODA conceptual framework (paper Section III):
//  * the four pillars of energy-efficient HPC (Wilde et al. [3]) — *where*
//    an ODA capability acts;
//  * the four types of data analytics (Gartner/Lepenioti [2],[70]) — *what
//    kind of question* it answers.
// Their cross product is the 4x4 grid every capability in this library is
// classified against.
#pragma once

#include <array>
#include <string>

namespace oda::core {

enum class Pillar {
  kBuildingInfrastructure = 0,
  kSystemHardware = 1,
  kSystemSoftware = 2,
  kApplications = 3,
};
inline constexpr std::size_t kPillarCount = 4;
inline constexpr std::array<Pillar, kPillarCount> kAllPillars = {
    Pillar::kBuildingInfrastructure, Pillar::kSystemHardware,
    Pillar::kSystemSoftware, Pillar::kApplications};

enum class AnalyticsType {
  kDescriptive = 0,
  kDiagnostic = 1,
  kPredictive = 2,
  kPrescriptive = 3,
};
inline constexpr std::size_t kTypeCount = 4;
inline constexpr std::array<AnalyticsType, kTypeCount> kAllTypes = {
    AnalyticsType::kDescriptive, AnalyticsType::kDiagnostic,
    AnalyticsType::kPredictive, AnalyticsType::kPrescriptive};

/// Temporal orientation of an analytics type (paper Fig. 2 discussion).
enum class Insight { kHindsight, kInsight, kForesight };

struct PillarTraits {
  Pillar pillar;
  const char* name;
  const char* description;
  /// Example subsystems of this pillar in the simulated facility.
  const char* example_components;
};

struct TypeTraits {
  AnalyticsType type;
  const char* name;
  /// The operational question this type answers (paper Section III-B).
  const char* question;
  Insight insight;
  bool proactive;  // anticipates (true) vs reacts (false)
  /// Relative business value and implementation difficulty, 1..4 — the two
  /// coordinates of the Figure 2 staircase.
  int value_rank;
  int difficulty_rank;
  const char* typical_techniques;
};

const PillarTraits& traits(Pillar p);
const TypeTraits& traits(AnalyticsType t);
const char* to_string(Pillar p);
const char* to_string(AnalyticsType t);
const char* to_string(Insight i);

/// Parses "building-infrastructure", "system-hardware", ... (throws on
/// unknown names).
Pillar pillar_from_string(const std::string& name);
AnalyticsType type_from_string(const std::string& name);

}  // namespace oda::core
