// Complex ODA systems (paper Section V, Figure 3): named compositions of
// capabilities that span multiple cells of the grid — the multi-type and
// multi-pillar cases whose trade-offs the paper discusses. Includes the
// published example systems used in Figure 3 and the discussion (ENI/Bortot,
// PowerStack, LLNL utility forecasting, DRAS-CQSim, ClusterCockpit, GEOPM).
#pragma once

#include <string>
#include <vector>

#include "core/grid.hpp"

namespace oda::core {

struct OdaSystem {
  std::string name;
  std::string site;         // deploying site/organization
  std::string description;
  std::vector<GridCell> cells;
  std::vector<int> references;

  bool multi_pillar() const;
  bool multi_type() const;
  /// Number of distinct disciplines the composition requires — the paper's
  /// Sec. V-A cost argument: one per analytics type involved.
  std::size_t discipline_count() const;
};

/// The complex-system examples discussed in the paper.
std::vector<OdaSystem> published_example_systems();

/// Renders the Figure 3 overlay: the 4x4 grid with a letter per system
/// marking every cell it occupies, plus the legend.
std::string render_figure3(const std::vector<OdaSystem>& systems);

/// Multi-pillar/multi-type census over a set of systems (Sec. V-B claim:
/// single-pillar systems dominate).
struct SystemCensus {
  std::size_t total = 0;
  std::size_t single_cell = 0;
  std::size_t multi_type_only = 0;
  std::size_t multi_pillar_only = 0;
  std::size_t multi_both = 0;
};
SystemCensus census(const std::vector<OdaSystem>& systems);

/// Jaccard similarity of two systems' cell sets — the paper's Sec. I claim
/// that the grid lets use cases be "compared in terms of similarity ...
/// based on their relative locations within the grid".
double system_similarity(const OdaSystem& a, const OdaSystem& b);

/// Pairwise similarity matrix over a set of systems, rendered as a table.
std::string render_similarity_matrix(const std::vector<OdaSystem>& systems);

/// Comprehensiveness: the fraction of the 16 cells a system covers.
double comprehensiveness(const OdaSystem& system);

}  // namespace oda::core
