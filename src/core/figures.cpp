#include "core/figures.hpp"

#include <sstream>

#include "common/string_util.hpp"
#include "common/table.hpp"

namespace oda::core {

std::string render_figure1() {
  std::ostringstream out;
  out << "FIGURE 1: FOUR PILLARS OF ENERGY EFFICIENT HPC\n";
  out << "\n";
  out << "            +--------------------------------------------------+\n";
  out << "            |        energy-efficient HPC data center          |\n";
  out << "            +--------------------------------------------------+\n";
  out << "              |             |              |             |\n";

  TextTable table({"pillar 1", "pillar 2", "pillar 3", "pillar 4"});
  std::vector<std::string> names, descs, examples;
  for (const auto& pillar : kAllPillars) {
    const auto& t = traits(pillar);
    names.push_back(t.name);
    descs.push_back(t.description);
    examples.push_back(std::string("in this library: ") + t.example_components);
  }
  for (std::size_t c = 0; c < 4; ++c) table.set_max_width(c, 24);
  table.add_row(names);
  table.add_separator();
  table.add_row(descs);
  table.add_separator();
  table.add_row(examples);
  out << table.render();
  return out.str();
}

std::string render_figure2(
    const std::map<AnalyticsType, double>& measured_cost_ms) {
  std::ostringstream out;
  out << "FIGURE 2: THE FOUR TYPES OF DATA ANALYTICS (value vs difficulty)\n\n";

  // Staircase, most sophisticated top-right.
  const std::array<AnalyticsType, 4> order = {
      AnalyticsType::kPrescriptive, AnalyticsType::kPredictive,
      AnalyticsType::kDiagnostic, AnalyticsType::kDescriptive};
  for (const auto& type : order) {
    const auto& t = traits(type);
    const std::string indent(
        static_cast<std::size_t>(t.difficulty_rank - 1) * 10, ' ');
    out << indent << "+------------------------+\n";
    out << indent << "| " << t.name << std::string(23 - std::string(t.name).size(), ' ')
        << "|\n";
    out << indent << "| \"" << t.question << "\"\n";
    out << indent << "| " << to_string(t.insight) << ", "
        << (t.proactive ? "proactive" : "reactive") << "\n";
    if (const auto it = measured_cost_ms.find(type);
        it != measured_cost_ms.end()) {
      out << indent << "| measured reference cost: "
          << format_double(it->second, 2) << " ms\n";
    }
    out << indent << "+------------------------+\n";
  }
  out << "\n  value and difficulty increase toward the top          \n";
  out << "  (hindsight -> insight -> foresight)\n";
  return out.str();
}

}  // namespace oda::core
