// Renderers for the paper's conceptual figures:
//  * Figure 1 — the four pillars of energy-efficient HPC, annotated with
//    the live subsystems of the simulated facility that realize each pillar;
//  * Figure 2 — the four-types staircase (value vs difficulty, hindsight →
//    insight → foresight), optionally annotated with measured per-type
//    compute cost from this library's reference pipeline.
#pragma once

#include <map>
#include <string>

#include "core/pillars.hpp"

namespace oda::core {

/// Figure 1: pillar structure + example components per pillar.
std::string render_figure1();

/// Figure 2: the staircase. `measured_cost_ms`, when non-empty, annotates
/// each type with the measured runtime of this library's reference
/// implementation of that type (demonstrating the difficulty ordering).
std::string render_figure2(
    const std::map<AnalyticsType, double>& measured_cost_ms = {});

}  // namespace oda::core
