// Compute-node model: power draw (idle + DVFS-scaled dynamic + temperature-
// dependent leakage), a first-order thermal RC circuit for the CPU package,
// a local fan-speed controller, and thermal throttling. The node knows
// nothing about jobs; the scheduler pushes a resource demand each step and
// reads back the achieved progress rate.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace oda::sim {

struct NodeParams {
  bool has_gpu = false;
  double idle_power_w = 110.0;
  double cpu_max_dynamic_w = 190.0;  // full util at f_max
  double gpu_idle_w = 25.0;
  double gpu_max_dynamic_w = 260.0;
  double mem_max_power_w = 45.0;
  double nic_max_power_w = 12.0;
  double fan_max_power_w = 30.0;

  double freq_min_ghz = 1.2;
  double freq_max_ghz = 3.0;
  double freq_nominal_ghz = 2.4;
  /// Dynamic power scales as (f/f_max)^freq_power_exponent.
  double freq_power_exponent = 2.4;

  double thermal_resistance_k_per_w = 0.16;  // CPU→inlet at nominal airflow
  double thermal_capacity_j_per_k = 2500.0;
  double leakage_w_per_k = 1.1;       // above leakage_onset_c
  double leakage_onset_c = 45.0;
  double fan_target_temp_c = 72.0;
  double throttle_temp_c = 88.0;
  double memory_capacity_gb = 256.0;
};

/// Resource demand placed on a node for the current step (from the phase of
/// the job fragment running there).
struct NodeDemand {
  double cpu_util = 0.0;
  double mem_bw_util = 0.0;
  double net_util = 0.0;
  double io_util = 0.0;
  double gpu_util = 0.0;
  double mem_boundedness = 0.0;
  /// Multiplier from network contention ([0,1], 1 = unimpeded).
  double contention = 1.0;
  double mem_used_gb = 4.0;  // resident memory (leak jobs ramp this)
  bool busy = false;
};

class Node : public SensorProvider, public KnobProvider {
 public:
  Node(std::string path_prefix, const NodeParams& params);

  /// Applies the demand and advances the physical state by dt seconds.
  /// `inlet_temp_c` comes from the facility cooling loop.
  void step(const NodeDemand& demand, double inlet_temp_c, Duration dt);

  // -- state ---------------------------------------------------------------
  double power_w() const { return power_w_; }
  double cpu_temp_c() const { return cpu_temp_c_; }
  double fan_speed() const { return fan_speed_; }  // [0,1]
  double frequency_ghz() const { return effective_freq_ghz_; }
  bool throttled() const { return throttled_; }
  double energy_j() const { return energy_j_; }
  /// Work progress per wall-clock second for the current demand: 1.0 means
  /// nominal speed. Scheduler multiplies by dt to advance job progress.
  double progress_rate() const { return progress_rate_; }
  const std::string& path() const { return prefix_; }
  const NodeParams& params() const { return params_; }

  // -- degradation hooks for fault injection --------------------------------
  void set_fan_failed(bool failed) { fan_failed_ = failed; }
  bool fan_failed() const { return fan_failed_; }
  /// Multiplies thermal resistance (e.g. 1.6 = degraded thermal interface).
  void set_thermal_degradation(double factor) { thermal_degradation_ = factor; }

  void enumerate_sensors(std::vector<SensorDef>& out) const override;
  void enumerate_knobs(std::vector<KnobDef>& out) override;

 private:
  std::string prefix_;
  NodeParams params_;

  // Knobs.
  double freq_setpoint_ghz_;

  // State.
  double cpu_temp_c_ = 35.0;
  double fan_speed_ = 0.3;
  double power_w_ = 0.0;
  double effective_freq_ghz_;
  double progress_rate_ = 0.0;
  double energy_j_ = 0.0;
  double mem_used_gb_ = 2.0;
  double cpu_util_ = 0.0;
  double mem_bw_util_ = 0.0;
  double net_util_ = 0.0;
  double io_util_ = 0.0;
  double gpu_util_ = 0.0;
  bool throttled_ = false;
  bool fan_failed_ = false;
  double thermal_degradation_ = 1.0;
};

}  // namespace oda::sim
