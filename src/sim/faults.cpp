#include "sim/faults.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oda::sim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kSensorStuck: return "sensor-stuck";
    case FaultKind::kSensorDrift: return "sensor-drift";
    case FaultKind::kSensorSpike: return "sensor-spike";
    case FaultKind::kSensorNoise: return "sensor-noise";
    case FaultKind::kSensorDropout: return "sensor-dropout";
    case FaultKind::kSensorStall: return "sensor-stall";
    case FaultKind::kFanFailure: return "fan-failure";
    case FaultKind::kThermalDegradation: return "thermal-degradation";
    case FaultKind::kPumpDegradation: return "pump-degradation";
    case FaultKind::kChillerFouling: return "chiller-fouling";
    case FaultKind::kNetworkDegradation: return "network-degradation";
  }
  return "?";
}

bool is_sensor_fault(FaultKind k) {
  switch (k) {
    case FaultKind::kSensorStuck:
    case FaultKind::kSensorDrift:
    case FaultKind::kSensorSpike:
    case FaultKind::kSensorNoise:
    case FaultKind::kSensorDropout:
    case FaultKind::kSensorStall:
      return true;
    default:
      return false;
  }
}

bool is_read_fault(FaultKind k) {
  return k == FaultKind::kSensorDropout || k == FaultKind::kSensorStall;
}

FaultInjector::FaultInjector(FaultInjector&& other) noexcept
    : events_(std::move(other.events_)),
      activated_(std::move(other.activated_)),
      hook_(std::move(other.hook_)) {
  // Lock the source while stealing its stuck state: a reader still applying
  // overlays on `other` must not observe half-moved vectors. (The analysis
  // exempts constructors for *this* object's members; `other`'s guarded
  // members still require its lock.)
  MutexLock lock(other.stuck_mu_);
  stuck_values_ = std::move(other.stuck_values_);
  stuck_captured_ = std::move(other.stuck_captured_);
}

FaultInjector& FaultInjector::operator=(FaultInjector&& other) noexcept {
  if (this != &other) {
    events_ = std::move(other.events_);
    activated_ = std::move(other.activated_);
    hook_ = std::move(other.hook_);
    // Two sequential critical sections (never nested, so no ordering edge):
    // steal the source's stuck state under its lock, then install it under
    // ours.
    std::vector<double> values;
    std::vector<bool> captured;
    {
      MutexLock lock(other.stuck_mu_);
      values = std::move(other.stuck_values_);
      captured = std::move(other.stuck_captured_);
    }
    MutexLock lock(stuck_mu_);
    stuck_values_ = std::move(values);
    stuck_captured_ = std::move(captured);
  }
  return *this;
}

void FaultInjector::schedule(FaultEvent event) {
  ODA_REQUIRE(event.end > event.start, "fault window must be non-empty");
  events_.push_back(std::move(event));
  activated_.push_back(false);
  MutexLock lock(stuck_mu_);
  stuck_values_.push_back(0.0);
  stuck_captured_.push_back(false);
}

void FaultInjector::step(TimePoint prev, TimePoint now) {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (is_sensor_fault(e.kind)) continue;
    const bool should_be_active = e.active_at(now);
    if (should_be_active && !activated_[i]) {
      activated_[i] = true;
      if (hook_) hook_(e, true);
    } else if (!should_be_active && activated_[i] && now > prev) {
      activated_[i] = false;
      if (hook_) hook_(e, false);
    }
  }
}

double FaultInjector::apply_sensor_faults(const std::string& path, double raw,
                                          TimePoint now, Rng& rng) const {
  double value = raw;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (!is_sensor_fault(e.kind) || is_read_fault(e.kind) || e.target != path) {
      continue;
    }
    if (!e.active_at(now)) {
      if (e.kind == FaultKind::kSensorStuck) {
        MutexLock lock(stuck_mu_);
        stuck_captured_[i] = false;  // re-arm for a later window
      }
      continue;
    }
    switch (e.kind) {
      case FaultKind::kSensorStuck: {
        MutexLock lock(stuck_mu_);
        if (!stuck_captured_[i]) {
          stuck_values_[i] = value;
          stuck_captured_[i] = true;
        }
        value = stuck_values_[i];
        break;
      }
      case FaultKind::kSensorDrift: {
        const double hours =
            static_cast<double>(now - e.start) / static_cast<double>(kHour);
        value += e.magnitude * hours;
        break;
      }
      case FaultKind::kSensorSpike:
        // ~5% of readings spike while the fault is active.
        if (rng.bernoulli(0.05)) value += e.magnitude;
        break;
      case FaultKind::kSensorNoise:
        value += rng.normal(0.0, e.magnitude);
        break;
      default:
        break;
    }
  }
  return value;
}

ReadFault FaultInjector::read_fault_at(const std::string& path, TimePoint now,
                                       Rng& rng) const {
  ReadFault out;
  for (const auto& e : events_) {
    if (!is_read_fault(e.kind) || e.target != path || !e.active_at(now)) {
      continue;
    }
    switch (e.kind) {
      case FaultKind::kSensorDropout: {
        const double p = std::min(1.0, std::max(0.0, e.magnitude));
        if (rng.bernoulli(p)) out.dropout = true;
        break;
      }
      case FaultKind::kSensorStall:
        out.stall_seconds += e.magnitude * rng.uniform(0.8, 1.2);
        break;
      default:
        break;
    }
  }
  return out;
}

std::vector<FaultEvent> FaultInjector::active_at(TimePoint t) const {
  std::vector<FaultEvent> out;
  for (const auto& e : events_) {
    if (e.active_at(t)) out.push_back(e);
  }
  return out;
}

bool FaultInjector::any_active_at(TimePoint t,
                                  const std::string& target_prefix) const {
  for (const auto& e : events_) {
    if (e.active_at(t) && e.target.rfind(target_prefix, 0) == 0) return true;
  }
  return false;
}

}  // namespace oda::sim
