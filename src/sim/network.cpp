#include "sim/network.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace oda::sim {

Network::Network(const NetworkParams& params)
    : params_(params),
      uplink_load_gbps_(params.racks, 0.0),
      uplink_degradation_(params.racks, 1.0) {
  ODA_REQUIRE(params.racks > 0 && params.nodes_per_rack > 0,
              "network needs racks and nodes");
}

void Network::begin_step() {
  std::fill(uplink_load_gbps_.begin(), uplink_load_gbps_.end(), 0.0);
  job_contention_.clear();
  job_rack_demand_.clear();
  total_traffic_gbps_ = 0.0;
}

void Network::add_job_traffic(std::uint64_t job_id,
                              const std::vector<std::size_t>& nodes,
                              double per_node_gbps) {
  if (nodes.empty() || per_node_gbps <= 0.0) return;
  per_node_gbps = std::min(per_node_gbps, params_.nic_capacity_gbps);

  // Count the job's nodes per rack.
  std::map<std::size_t, std::size_t> per_rack;
  for (std::size_t n : nodes) ++per_rack[rack_of(n)];

  const double total_nodes = static_cast<double>(nodes.size());
  total_traffic_gbps_ += per_node_gbps * total_nodes;
  if (per_rack.size() < 2) return;  // intra-rack traffic never hits uplinks

  // Uniform all-to-all: the fraction of a node's traffic leaving its rack is
  // the fraction of peer nodes outside the rack.
  for (const auto& [rack, count] : per_rack) {
    const double k = static_cast<double>(count);
    const double remote_fraction = (total_nodes - k) / std::max(total_nodes - 1.0, 1.0);
    const double demand = per_node_gbps * k * remote_fraction;
    uplink_load_gbps_[rack] += demand;
    job_rack_demand_[job_id][rack] = demand;
  }
}

void Network::finalize_step() {
  for (const auto& [job_id, racks] : job_rack_demand_) {
    double factor = 1.0;
    for (const auto& [rack, demand] : racks) {
      const double capacity =
          params_.uplink_capacity_gbps * uplink_degradation_[rack];
      const double load = uplink_load_gbps_[rack];
      if (load > capacity && load > 0.0) {
        factor = std::min(factor, capacity / load);
      }
    }
    job_contention_[job_id] = factor;
  }
}

double Network::contention(std::uint64_t job_id) const {
  const auto it = job_contention_.find(job_id);
  return it == job_contention_.end() ? 1.0 : it->second;
}

double Network::uplink_utilization(std::size_t rack) const {
  ODA_REQUIRE(rack < params_.racks, "rack out of range");
  const double capacity = params_.uplink_capacity_gbps * uplink_degradation_[rack];
  return capacity > 0.0 ? uplink_load_gbps_[rack] / capacity : 1.0;
}

void Network::set_uplink_degradation(std::size_t rack, double factor) {
  ODA_REQUIRE(rack < params_.racks, "rack out of range");
  uplink_degradation_[rack] = std::clamp(factor, 0.01, 1.0);
}

void Network::enumerate_sensors(std::vector<SensorDef>& out) const {
  for (std::size_t r = 0; r < params_.racks; ++r) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "network/rack%02zu/uplink_util", r);
    out.push_back({buf, "ratio", [this, r] { return uplink_utilization(r); }});
  }
  out.push_back({"network/total_traffic", "Gbps",
                 [this] { return total_traffic_gbps_; }});
}

}  // namespace oda::sim
