#include "sim/weather.hpp"

#include <cmath>

namespace oda::sim {

Weather::Weather(const WeatherParams& params, Rng rng)
    : params_(params), rng_(rng) {
  step(0, 0);
}

void Weather::step(TimePoint now, Duration dt) {
  // AR(1) front noise; persistence is per-step but steps are fixed-size so
  // the correlation time is stable for a given configuration.
  if (dt > 0) {
    front_ = params_.front_persistence * front_ +
             std::sqrt(1.0 - params_.front_persistence * params_.front_persistence) *
                 rng_.normal(0.0, params_.front_stddev);
  }
  const double day_frac =
      static_cast<double>((now % kDay)) / static_cast<double>(kDay);
  const double year_frac =
      static_cast<double>((now + params_.season_phase) % (365 * kDay)) /
      static_cast<double>(365 * kDay);
  // Peak heat at ~15:00 local and mid-summer.
  const double diurnal =
      params_.diurnal_amplitude * std::cos(2.0 * M_PI * (day_frac - 0.625));
  const double seasonal =
      params_.seasonal_amplitude * std::cos(2.0 * M_PI * (year_frac - 0.55));
  drybulb_ = params_.mean_temp_c + seasonal + diurnal + front_;
  // Wet-bulb tracks dry-bulb with a damped swing (humidity buffering).
  wetbulb_ = drybulb_ - params_.wetbulb_depression - 0.15 * diurnal;
}

void Weather::enumerate_sensors(std::vector<SensorDef>& out) const {
  out.push_back({"weather/drybulb_temp", "degC", [this] { return drybulb_; }});
  out.push_back({"weather/wetbulb_temp", "degC", [this] { return wetbulb_; }});
}

}  // namespace oda::sim
