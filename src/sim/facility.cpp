#include "sim/facility.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oda::sim {

Facility::Facility(const FacilityParams& params)
    : params_(params),
      supply_setpoint_(params.supply_setpoint_c),
      supply_temp_c_(params.supply_setpoint_c),
      return_temp_c_(params.supply_setpoint_c + 8.0) {}

void Facility::set_supply_setpoint_c(double v) {
  supply_setpoint_ = std::clamp(v, params_.supply_min_c, params_.supply_max_c);
}

void Facility::step(double it_power_w, double wetbulb_c, Duration dt) {
  ODA_REQUIRE(it_power_w >= 0.0, "negative IT power");
  const double q = it_power_w;  // heat to reject (steady-state)

  // Which path can reach the setpoint? Free cooling needs
  // wetbulb + approach <= setpoint.
  const double free_achievable_c = wetbulb_c + params_.tower_approach_k;
  const bool free_feasible = free_achievable_c <= supply_setpoint_;
  switch (mode_) {
    case CoolingMode::kAuto:
      free_cooling_active_ = free_feasible;
      break;
    case CoolingMode::kChillerOnly:
      free_cooling_active_ = false;
      break;
    case CoolingMode::kFreeOnly:
      free_cooling_active_ = true;
      break;
  }

  // Pump power follows the affinity law; degradation wastes power.
  pump_power_w_ = params_.pump_nominal_w * pump_speed_ * pump_speed_ *
                  pump_speed_ * pump_degradation_;

  double target_supply = supply_setpoint_;
  if (free_cooling_active_) {
    chiller_power_w_ = 0.0;
    chiller_cop_ = 0.0;
    tower_power_w_ = params_.tower_fan_fraction * q;
    // Forced free cooling cannot go below what the tower can deliver.
    target_supply = std::max(supply_setpoint_, free_achievable_c);
  } else {
    const double t_evap = supply_setpoint_ - 2.0;
    const double t_cond = wetbulb_c + params_.condenser_approach_k;
    const double lift = std::max(t_cond - t_evap, 1.0);
    chiller_cop_ = std::clamp(
        params_.chiller_cop_base - params_.chiller_cop_slope * lift -
            chiller_fouling_,
        params_.chiller_cop_min, params_.chiller_cop_max);
    chiller_power_w_ = q / chiller_cop_;
    // Condenser heat still goes through the tower.
    tower_power_w_ = params_.tower_fan_fraction * (q + chiller_power_w_);
  }

  // Loop thermal inertia: supply temperature relaxes toward the target; a
  // degraded pump slows the response (less flow).
  const double tau = params_.loop_time_constant_s * pump_degradation_ /
                     std::max(pump_speed_, 0.1);
  const double decay = std::exp(-static_cast<double>(dt) / std::max(tau, 1.0));
  supply_temp_c_ = target_supply + (supply_temp_c_ - target_supply) * decay;

  // Return temperature from the heat balance: dT = Q / (m_dot * c_p); at
  // nominal flow the design dT is ~8 K at nominal IT load.
  const double design_dt = 8.0;
  const double flow_factor = std::max(pump_speed_, 0.1);
  return_temp_c_ = supply_temp_c_ +
                   design_dt * (q / params_.it_nominal_w) / flow_factor;

  // PDU/UPS conversion losses with a low-load efficiency penalty.
  const double load_frac = std::clamp(it_power_w / params_.it_nominal_w, 0.0, 1.5);
  const double eta = params_.pdu_efficiency_max -
                     params_.pdu_low_load_penalty * (1.0 - std::min(load_frac, 1.0)) *
                         (1.0 - std::min(load_frac, 1.0));
  pdu_loss_w_ = it_power_w * (1.0 / eta - 1.0);

  facility_power_w_ = it_power_w + pdu_loss_w_ + cooling_power_w() +
                      params_.misc_overhead_w;
  pue_ = it_power_w > 1.0 ? facility_power_w_ / it_power_w : 1.0;
}

void Facility::enumerate_sensors(std::vector<SensorDef>& out) const {
  const auto add = [&](const char* leaf, const char* unit, auto getter) {
    out.push_back({std::string("facility/") + leaf, unit, getter});
  };
  add("supply_temp", "degC", [this] { return supply_temp_c_; });
  add("return_temp", "degC", [this] { return return_temp_c_; });
  add("chiller_power", "W", [this] { return chiller_power_w_; });
  add("tower_power", "W", [this] { return tower_power_w_; });
  add("pump_power", "W", [this] { return pump_power_w_; });
  add("pdu_loss", "W", [this] { return pdu_loss_w_; });
  add("cooling_power", "W", [this] { return cooling_power_w(); });
  add("total_power", "W", [this] { return facility_power_w_; });
  add("pue", "ratio", [this] { return pue_; });
  add("free_cooling", "bool", [this] { return free_cooling_active_ ? 1.0 : 0.0; });
  add("chiller_cop", "ratio", [this] { return chiller_cop_; });
}

void Facility::enumerate_knobs(std::vector<KnobDef>& out) {
  KnobDef setpoint;
  setpoint.path = "facility/supply_setpoint";
  setpoint.unit = "degC";
  setpoint.min_value = params_.supply_min_c;
  setpoint.max_value = params_.supply_max_c;
  setpoint.get = [this] { return supply_setpoint_; };
  setpoint.set = [this](double v) { set_supply_setpoint_c(v); };
  out.push_back(std::move(setpoint));

  KnobDef mode;
  mode.path = "facility/cooling_mode";
  mode.unit = "enum";  // 0=auto, 1=chiller, 2=free
  mode.min_value = 0.0;
  mode.max_value = 2.0;
  mode.get = [this] { return static_cast<double>(mode_); };
  mode.set = [this](double v) {
    mode_ = static_cast<CoolingMode>(std::clamp(static_cast<int>(v + 0.5), 0, 2));
  };
  out.push_back(std::move(mode));

  KnobDef pump;
  pump.path = "facility/pump_speed";
  pump.unit = "ratio";
  pump.min_value = 0.4;
  pump.max_value = 1.3;
  pump.get = [this] { return pump_speed_; };
  pump.set = [this](double v) { pump_speed_ = v; };
  out.push_back(std::move(pump));
}

}  // namespace oda::sim
