// Outdoor weather model: dry-bulb and wet-bulb temperatures with diurnal and
// seasonal cycles plus slow AR(1) weather-front noise. The cooling plant's
// free-cooling economics depend on the wet-bulb trace, so its shape (daily
// swing, multi-day fronts) is what matters, not meteorological fidelity.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"

namespace oda::sim {

struct WeatherParams {
  double mean_temp_c = 14.0;        // annual mean dry-bulb
  double seasonal_amplitude = 9.0;  // summer/winter swing
  double diurnal_amplitude = 5.0;   // day/night swing
  double front_stddev = 2.5;        // AR(1) noise scale (weather fronts)
  double front_persistence = 0.9995;  // AR(1) coefficient per step
  double wetbulb_depression = 4.0;  // mean dry-bulb minus wet-bulb
  TimePoint season_phase = 15 * kDay;  // sim epoch offset into the year
};

class Weather : public SensorProvider {
 public:
  Weather(const WeatherParams& params, Rng rng);

  void step(TimePoint now, Duration dt);

  double drybulb_c() const { return drybulb_; }
  double wetbulb_c() const { return wetbulb_; }

  void enumerate_sensors(std::vector<SensorDef>& out) const override;

 private:
  WeatherParams params_;
  Rng rng_;
  double front_ = 0.0;
  double drybulb_ = 0.0;
  double wetbulb_ = 0.0;
};

}  // namespace oda::sim
