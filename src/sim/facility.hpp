// Building-infrastructure model: warm-water cooling loop with chiller and
// free-cooling (cooling tower) paths, circulation pumps, PDU/UPS conversion
// losses, and facility overhead. Exposes the knobs the prescriptive pillar
// tunes (supply-temperature setpoint, cooling mode, pump speed) and the
// sensors the descriptive pillar turns into PUE.
//
// Physics is first-order but captures the real trade-offs:
//  * higher supply setpoint -> more free-cooling hours and better chiller
//    COP, but hotter nodes -> more leakage and fan power (see Node);
//  * free cooling is only feasible when the wet-bulb is low enough;
//  * PDU efficiency sags at low load.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace oda::sim {

enum class CoolingMode { kAuto = 0, kChillerOnly = 1, kFreeOnly = 2 };

struct FacilityParams {
  double supply_setpoint_c = 30.0;   // warm-water default
  double supply_min_c = 18.0;
  double supply_max_c = 45.0;
  /// Tower approach: achievable supply = wetbulb + approach in free mode.
  double tower_approach_k = 4.0;
  /// Chiller condenser approach above wet-bulb.
  double condenser_approach_k = 5.0;
  double chiller_cop_base = 9.0;
  double chiller_cop_slope = 0.22;   // COP drop per K of lift
  double chiller_cop_min = 2.0;
  double chiller_cop_max = 9.0;
  /// Tower fan power as a fraction of rejected heat.
  double tower_fan_fraction = 0.015;
  double pump_nominal_w = 1100.0;
  double loop_time_constant_s = 900.0;  // thermal inertia of the water loop
  double pdu_efficiency_max = 0.965;
  double pdu_low_load_penalty = 0.06;  // efficiency drop at zero load
  double misc_overhead_w = 1500.0;     // lighting, security, offices — sized
                                       // to the 64-node reference system
  double it_nominal_w = 25000.0;       // design IT load (for PDU load frac)
};

class Facility : public SensorProvider, public KnobProvider {
 public:
  explicit Facility(const FacilityParams& params);

  /// Advances the plant: removes `it_power_w` of heat given the current
  /// outdoor wet-bulb temperature.
  void step(double it_power_w, double wetbulb_c, Duration dt);

  double supply_temp_c() const { return supply_temp_c_; }
  double return_temp_c() const { return return_temp_c_; }
  double chiller_power_w() const { return chiller_power_w_; }
  double tower_power_w() const { return tower_power_w_; }
  double pump_power_w() const { return pump_power_w_; }
  double pdu_loss_w() const { return pdu_loss_w_; }
  double cooling_power_w() const {
    return chiller_power_w_ + tower_power_w_ + pump_power_w_;
  }
  double facility_power_w() const { return facility_power_w_; }
  double pue() const { return pue_; }
  bool free_cooling_active() const { return free_cooling_active_; }
  double chiller_cop() const { return chiller_cop_; }

  // Knob state (also exposed via enumerate_knobs).
  double supply_setpoint_c_knob() const { return supply_setpoint_; }
  void set_supply_setpoint_c(double v);
  CoolingMode cooling_mode() const { return mode_; }
  void set_cooling_mode(CoolingMode m) { mode_ = m; }
  double pump_speed() const { return pump_speed_; }

  // Fault hooks.
  void set_pump_degradation(double factor) { pump_degradation_ = factor; }
  void set_chiller_fouling(double cop_penalty) { chiller_fouling_ = cop_penalty; }

  void enumerate_sensors(std::vector<SensorDef>& out) const override;
  void enumerate_knobs(std::vector<KnobDef>& out) override;

  const FacilityParams& params() const { return params_; }

 private:
  FacilityParams params_;

  // Knobs.
  double supply_setpoint_;
  CoolingMode mode_ = CoolingMode::kAuto;
  double pump_speed_ = 1.0;  // [0.4, 1.3] of nominal flow

  // State.
  double supply_temp_c_;
  double return_temp_c_;
  double chiller_power_w_ = 0.0;
  double tower_power_w_ = 0.0;
  double pump_power_w_ = 0.0;
  double pdu_loss_w_ = 0.0;
  double facility_power_w_ = 0.0;
  double pue_ = 1.0;
  double chiller_cop_ = 0.0;
  bool free_cooling_active_ = false;
  double pump_degradation_ = 1.0;
  double chiller_fouling_ = 0.0;
};

}  // namespace oda::sim
