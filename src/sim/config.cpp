#include "sim/config.hpp"

#include <functional>
#include <map>
#include <string>

#include "common/error.hpp"

namespace oda::sim {

namespace {

/// Uniform key table: each entry knows how to read its value from and write
/// it into a ClusterParams. One table serves parsing, serialization, and
/// unknown-key detection.
struct KeyBinding {
  std::function<void(ClusterParams&, const Config&, const std::string&)> apply;
  std::function<void(const ClusterParams&, Config&, const std::string&)> save;
};

template <typename T, typename Field>
KeyBinding bind(Field field) {
  KeyBinding b;
  b.apply = [field](ClusterParams& p, const Config& c, const std::string& key) {
    if constexpr (std::is_same_v<T, double>) {
      p.*field = c.get_double(key);
    } else if constexpr (std::is_same_v<T, bool>) {
      p.*field = c.get_bool(key);
    } else {
      p.*field = static_cast<T>(c.get_int(key));
    }
  };
  b.save = [field](const ClusterParams& p, Config& c, const std::string& key) {
    if constexpr (std::is_same_v<T, double>) {
      c.set(key, static_cast<double>(p.*field));
    } else if constexpr (std::is_same_v<T, bool>) {
      c.set(key, static_cast<bool>(p.*field));
    } else {
      c.set(key, static_cast<std::int64_t>(p.*field));
    }
  };
  return b;
}

template <typename T, typename Sub, typename SubField>
KeyBinding bind_sub(Sub sub, SubField field) {
  KeyBinding b;
  b.apply = [sub, field](ClusterParams& p, const Config& c,
                         const std::string& key) {
    if constexpr (std::is_same_v<T, double>) {
      (p.*sub).*field = c.get_double(key);
    } else if constexpr (std::is_same_v<T, bool>) {
      (p.*sub).*field = c.get_bool(key);
    } else {
      (p.*sub).*field = static_cast<T>(c.get_int(key));
    }
  };
  b.save = [sub, field](const ClusterParams& p, Config& c,
                        const std::string& key) {
    if constexpr (std::is_same_v<T, double>) {
      c.set(key, static_cast<double>((p.*sub).*field));
    } else if constexpr (std::is_same_v<T, bool>) {
      c.set(key, static_cast<bool>((p.*sub).*field));
    } else {
      c.set(key, static_cast<std::int64_t>((p.*sub).*field));
    }
  };
  return b;
}

const std::map<std::string, KeyBinding>& key_table() {
  static const std::map<std::string, KeyBinding> kTable = {
      // cluster
      {"cluster.racks", bind<std::size_t>(&ClusterParams::racks)},
      {"cluster.nodes_per_rack", bind<std::size_t>(&ClusterParams::nodes_per_rack)},
      {"cluster.gpu_node_fraction", bind<double>(&ClusterParams::gpu_node_fraction)},
      {"cluster.dt", bind<Duration>(&ClusterParams::dt)},
      {"cluster.seed", bind<std::uint64_t>(&ClusterParams::seed)},
      {"cluster.uplink_capacity_gbps", bind<double>(&ClusterParams::uplink_capacity_gbps)},
      {"cluster.nic_capacity_gbps", bind<double>(&ClusterParams::nic_capacity_gbps)},
      {"cluster.rack_inlet_offset_c", bind<double>(&ClusterParams::rack_inlet_offset_c)},
      {"cluster.rack_thermal_coupling_c", bind<double>(&ClusterParams::rack_thermal_coupling_c)},
      // weather
      {"weather.mean_temp_c", bind_sub<double>(&ClusterParams::weather, &WeatherParams::mean_temp_c)},
      {"weather.seasonal_amplitude", bind_sub<double>(&ClusterParams::weather, &WeatherParams::seasonal_amplitude)},
      {"weather.diurnal_amplitude", bind_sub<double>(&ClusterParams::weather, &WeatherParams::diurnal_amplitude)},
      {"weather.front_stddev", bind_sub<double>(&ClusterParams::weather, &WeatherParams::front_stddev)},
      {"weather.wetbulb_depression", bind_sub<double>(&ClusterParams::weather, &WeatherParams::wetbulb_depression)},
      // workload
      {"workload.user_count", bind_sub<std::size_t>(&ClusterParams::workload, &WorkloadParams::user_count)},
      {"workload.peak_arrival_rate_per_hour", bind_sub<double>(&ClusterParams::workload, &WorkloadParams::peak_arrival_rate_per_hour)},
      {"workload.max_nodes_per_job", bind_sub<std::size_t>(&ClusterParams::workload, &WorkloadParams::max_nodes_per_job)},
      {"workload.min_duration", bind_sub<Duration>(&ClusterParams::workload, &WorkloadParams::min_duration)},
      {"workload.max_duration", bind_sub<Duration>(&ClusterParams::workload, &WorkloadParams::max_duration)},
      {"workload.miner_fraction", bind_sub<double>(&ClusterParams::workload, &WorkloadParams::miner_fraction)},
      {"workload.leak_fraction", bind_sub<double>(&ClusterParams::workload, &WorkloadParams::leak_fraction)},
      {"workload.seed", bind_sub<std::uint64_t>(&ClusterParams::workload, &WorkloadParams::seed)},
      // facility
      {"facility.supply_setpoint_c", bind_sub<double>(&ClusterParams::facility, &FacilityParams::supply_setpoint_c)},
      {"facility.tower_approach_k", bind_sub<double>(&ClusterParams::facility, &FacilityParams::tower_approach_k)},
      {"facility.chiller_cop_base", bind_sub<double>(&ClusterParams::facility, &FacilityParams::chiller_cop_base)},
      {"facility.chiller_cop_slope", bind_sub<double>(&ClusterParams::facility, &FacilityParams::chiller_cop_slope)},
      {"facility.pump_nominal_w", bind_sub<double>(&ClusterParams::facility, &FacilityParams::pump_nominal_w)},
      {"facility.misc_overhead_w", bind_sub<double>(&ClusterParams::facility, &FacilityParams::misc_overhead_w)},
      {"facility.pdu_efficiency_max", bind_sub<double>(&ClusterParams::facility, &FacilityParams::pdu_efficiency_max)},
      // node
      {"node.idle_power_w", bind_sub<double>(&ClusterParams::node, &NodeParams::idle_power_w)},
      {"node.cpu_max_dynamic_w", bind_sub<double>(&ClusterParams::node, &NodeParams::cpu_max_dynamic_w)},
      {"node.freq_min_ghz", bind_sub<double>(&ClusterParams::node, &NodeParams::freq_min_ghz)},
      {"node.freq_max_ghz", bind_sub<double>(&ClusterParams::node, &NodeParams::freq_max_ghz)},
      {"node.freq_nominal_ghz", bind_sub<double>(&ClusterParams::node, &NodeParams::freq_nominal_ghz)},
      {"node.throttle_temp_c", bind_sub<double>(&ClusterParams::node, &NodeParams::throttle_temp_c)},
      {"node.fan_target_temp_c", bind_sub<double>(&ClusterParams::node, &NodeParams::fan_target_temp_c)},
      {"node.memory_capacity_gb", bind_sub<double>(&ClusterParams::node, &NodeParams::memory_capacity_gb)},
      // scheduler
      {"scheduler.backfill",
       {[](ClusterParams& p, const Config& c, const std::string& key) {
          p.scheduler.discipline = c.get_bool(key)
                                       ? QueueDiscipline::kEasyBackfill
                                       : QueueDiscipline::kFcfs;
        },
        [](const ClusterParams& p, Config& c, const std::string& key) {
          c.set(key, p.scheduler.discipline == QueueDiscipline::kEasyBackfill);
        }}},
  };
  return kTable;
}

}  // namespace

ClusterParams cluster_params_from_config(const Config& config,
                                         ClusterParams base) {
  const auto& table = key_table();
  for (const auto& key : config.keys()) {
    const auto it = table.find(key);
    if (it == table.end()) {
      throw ConfigError("unknown simulation config key: " + key);
    }
    it->second.apply(base, config, key);
  }
  return base;
}

ClusterParams cluster_params_from_config(const Config& config) {
  return cluster_params_from_config(config, ClusterParams{});
}

Config cluster_params_to_config(const ClusterParams& params) {
  Config out;
  for (const auto& [key, binding] : key_table()) {
    binding.save(params, out, key);
  }
  return out;
}

}  // namespace oda::sim
