#include "sim/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace oda::sim {

const JobPhase& RunningJob::current_phase() const {
  ODA_REQUIRE(!spec.phases.empty(), "job without phases");
  double cumulative = 0.0;
  for (const auto& phase : spec.phases) {
    cumulative += static_cast<double>(phase.nominal_duration);
    if (progress_s < cumulative) return phase;
  }
  return spec.phases.back();
}

double RunningJob::mem_used_gb(TimePoint now) const {
  const double base = 4.0 + 2.0 * static_cast<double>(spec.nodes_requested);
  if (spec.job_class != JobClass::kMemoryLeak) return base;
  // Leak: ~1.5 GB/minute of wall-clock, unbounded until OOM.
  const double elapsed = static_cast<double>(now - start_time);
  return base + elapsed * (1.5 / 60.0);
}

std::optional<std::vector<std::size_t>> FirstFitPlacement::place(
    const JobSpec& spec, const std::vector<bool>& node_busy) {
  std::vector<std::size_t> chosen;
  for (std::size_t i = 0; i < node_busy.size() && chosen.size() < spec.nodes_requested;
       ++i) {
    if (!node_busy[i]) chosen.push_back(i);
  }
  if (chosen.size() < spec.nodes_requested) return std::nullopt;
  return chosen;
}

Scheduler::Scheduler(std::size_t node_count, const SchedulerParams& params)
    : params_(params),
      placement_(std::make_shared<FirstFitPlacement>()),
      node_busy_(node_count, false) {
  ODA_REQUIRE(node_count > 0, "scheduler needs nodes");
}

void Scheduler::set_placement(std::shared_ptr<PlacementPolicy> placement) {
  ODA_REQUIRE(placement != nullptr, "null placement policy");
  placement_ = std::move(placement);
}

void Scheduler::submit(JobSpec spec) {
  ODA_REQUIRE(spec.nodes_requested <= node_busy_.size(),
              "job larger than the machine");
  queue_.push_back(std::move(spec));
}

std::size_t Scheduler::free_node_count() const {
  return static_cast<std::size_t>(
      std::count(node_busy_.begin(), node_busy_.end(), false));
}

bool Scheduler::try_start(const JobSpec& spec, TimePoint now) {
  auto nodes = placement_->place(spec, node_busy_);
  if (!nodes) return false;
  ODA_REQUIRE(nodes->size() == spec.nodes_requested,
              "placement returned wrong node count");
  RunningJob job;
  job.spec = spec;
  job.start_time = now;
  job.nodes = std::move(*nodes);
  for (std::size_t n : job.nodes) {
    ODA_REQUIRE(!node_busy_[n], "placement chose a busy node");
    node_busy_[n] = true;
  }
  running_.push_back(std::move(job));
  return true;
}

TimePoint Scheduler::shadow_time(const JobSpec& head, TimePoint now) const {
  // Sort running jobs by their hard end bound (start + walltime request).
  std::vector<std::pair<TimePoint, std::size_t>> releases;
  releases.reserve(running_.size());
  for (const auto& job : running_) {
    releases.push_back({job.start_time + job.spec.walltime_requested,
                        job.nodes.size()});
  }
  std::sort(releases.begin(), releases.end());
  std::size_t free_nodes = free_node_count();
  for (const auto& [at, count] : releases) {
    free_nodes += count;
    if (free_nodes >= head.nodes_requested) return std::max(at, now);
  }
  return kTimeMax;  // cannot ever start (should not happen: job fits machine)
}

void Scheduler::schedule(TimePoint now) {
  // Start jobs from the queue head while they fit.
  while (!queue_.empty() && try_start(queue_.front(), now)) {
    queue_.pop_front();
  }
  if (queue_.empty() || params_.discipline == QueueDiscipline::kFcfs) return;

  // EASY backfill: the head job gets a reservation; later jobs may jump the
  // queue only if they terminate (per their walltime request) before the
  // reservation, so the head job is never delayed.
  const TimePoint reservation = shadow_time(queue_.front(), now);
  for (auto it = queue_.begin() + 1; it != queue_.end();) {
    const bool fits_before_shadow =
        now + it->walltime_requested <= reservation;
    // A job that fits in the nodes left over even at the shadow time would
    // also be safe, but the simple time-based condition is the classic EASY
    // rule and is what we implement.
    if (fits_before_shadow && try_start(*it, now)) {
      ++backfilled_count_;
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void Scheduler::advance_job(std::uint64_t job_id, double work_s, double energy_j) {
  for (auto& job : running_) {
    if (job.spec.id == job_id) {
      job.progress_s += work_s;
      job.energy_j += energy_j;
      return;
    }
  }
  throw ContractError("advance_job: unknown job id");
}

std::vector<JobRecord> Scheduler::reap(TimePoint now,
                                       double node_memory_capacity_gb) {
  std::vector<JobRecord> reaped;
  for (auto it = running_.begin(); it != running_.end();) {
    const RunningJob& job = *it;
    std::optional<JobOutcome> outcome;
    if (job.progress_s >= static_cast<double>(job.spec.nominal_duration())) {
      outcome = JobOutcome::kFinished;
    } else if (now - job.start_time >=
               static_cast<Duration>(static_cast<double>(job.spec.walltime_requested) *
                                     params_.walltime_grace)) {
      outcome = JobOutcome::kKilledWalltime;
    } else if (job.mem_used_gb(now) >= node_memory_capacity_gb) {
      outcome = JobOutcome::kFailedOom;
    }
    if (!outcome) {
      ++it;
      continue;
    }
    JobRecord record;
    record.spec = job.spec;
    record.start_time = job.start_time;
    record.end_time = now;
    record.nodes = job.nodes;
    record.energy_j = job.energy_j;
    record.outcome = *outcome;
    for (std::size_t n : job.nodes) node_busy_[n] = false;
    reaped.push_back(record);
    completed_.push_back(std::move(record));
    it = running_.erase(it);
  }
  return reaped;
}

void Scheduler::enumerate_sensors(std::vector<SensorDef>& out) const {
  out.push_back({"scheduler/queue_length", "jobs",
                 [this] { return static_cast<double>(queue_.size()); }});
  out.push_back({"scheduler/running_jobs", "jobs",
                 [this] { return static_cast<double>(running_.size()); }});
  out.push_back({"scheduler/free_nodes", "nodes",
                 [this] { return static_cast<double>(free_node_count()); }});
  out.push_back({"scheduler/utilization", "ratio", [this] {
                   const double total = static_cast<double>(node_busy_.size());
                   return (total - static_cast<double>(free_node_count())) / total;
                 }});
  out.push_back({"scheduler/backfilled_total", "jobs",
                 [this] { return static_cast<double>(backfilled_count_); }});
  out.push_back({"scheduler/completed_total", "jobs",
                 [this] { return static_cast<double>(completed_.size()); }});
}

}  // namespace oda::sim
