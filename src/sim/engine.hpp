// Simulation substrate interfaces.
//
// The data-center simulator stands in for a real HPC facility (see
// DESIGN.md §2): it advances on a fixed time step and publishes its state
// through two registries that mirror how ODA interacts with production
// systems — *sensors* (read-only telemetry, the monitoring plane) and
// *knobs* (writable actuators, the control plane). Analytics code never
// touches simulator internals; it sees exactly what it would see on a real
// machine: sensor paths and knob paths.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace oda::sim {

/// A readable telemetry channel exposed by the simulated facility.
struct SensorDef {
  std::string path;  // hierarchical, '/'-separated, e.g. "rack00/node003/power"
  std::string unit;  // "W", "degC", "ratio", ...
  std::function<double()> read;
};

/// A writable actuator exposed by the simulated facility.
struct KnobDef {
  std::string path;  // e.g. "facility/cooling/supply_setpoint"
  std::string unit;
  double min_value = 0.0;
  double max_value = 1.0;
  std::function<double()> get;
  std::function<void(double)> set;
};

/// Anything that contributes sensors to the monitoring plane.
class SensorProvider {
 public:
  virtual ~SensorProvider() = default;
  virtual void enumerate_sensors(std::vector<SensorDef>& out) const = 0;
};

/// Anything that contributes knobs to the control plane.
class KnobProvider {
 public:
  virtual ~KnobProvider() = default;
  virtual void enumerate_knobs(std::vector<KnobDef>& out) = 0;
};

/// Registry resolving knob paths to actuators; the prescriptive pillar's
/// only way to influence the system.
class KnobRegistry {
 public:
  void add(KnobDef knob);
  void add_all(KnobProvider& provider);

  bool contains(const std::string& path) const;
  std::vector<std::string> paths() const;
  const KnobDef& at(const std::string& path) const;

  double get(const std::string& path) const;
  /// Clamps to the knob's range and applies.
  void set(const std::string& path, double value);

 private:
  std::vector<KnobDef> knobs_;
};

}  // namespace oda::sim
