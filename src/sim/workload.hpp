// Synthetic HPC workload: job classes with distinct telemetry signatures,
// multi-phase execution profiles, a user population with realistic
// walltime-request overestimation, and a diurnal arrival process.
//
// Ground truth (true class, true nominal duration) is kept on the JobSpec so
// diagnostic and predictive analytics can be *scored*, which is the key
// advantage of the simulated substrate over a real facility.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace oda::sim {

enum class JobClass {
  kComputeBound = 0,
  kMemoryBound,
  kNetworkBound,
  kIoBound,
  kGpuCompute,
  kCryptoMiner,   // the anomalous workload of Ates et al. / DeMasi et al.
  kMemoryLeak,    // software-anomaly workload of Tuncer et al.
  kCount
};

const char* job_class_name(JobClass c);

/// One execution phase: resource demands while the phase is active.
struct JobPhase {
  Duration nominal_duration = 0;  // at nominal CPU frequency, no contention
  double cpu_util = 0.0;          // [0,1]
  double mem_bw_util = 0.0;       // [0,1]
  double net_util = 0.0;          // [0,1] of per-node NIC capacity
  double io_util = 0.0;           // [0,1]
  double gpu_util = 0.0;          // [0,1]
  /// Fraction of runtime insensitive to CPU frequency (memory/IO stalls):
  /// progress rate = (1-b) * f/f_nom + b.
  double mem_boundedness = 0.0;
};

struct JobSpec {
  std::uint64_t id = 0;
  std::string user;
  std::string queue;              // "small" | "medium" | "large"
  JobClass job_class = JobClass::kComputeBound;
  TimePoint submit_time = 0;
  std::size_t nodes_requested = 1;
  Duration walltime_requested = 0;  // user's (overestimated) request
  std::vector<JobPhase> phases;

  /// Ground truth: total nominal work in seconds (sum of phase durations).
  Duration nominal_duration() const;
};

struct WorkloadParams {
  std::size_t user_count = 24;
  /// Mean jobs/hour at the daily peak; the trough is ~35% of peak.
  double peak_arrival_rate_per_hour = 30.0;
  std::size_t max_nodes_per_job = 16;
  Duration min_duration = 10 * kMinute;
  Duration max_duration = 12 * kHour;
  /// Probability that a generated job is a crypto-miner / leaky job.
  double miner_fraction = 0.0;
  double leak_fraction = 0.0;
  /// Seed jitter for per-user behaviour.
  std::uint64_t seed = 42;
};

/// Per-user behavioural profile: preferred job classes, sizes, and a stable
/// walltime overestimation factor — this is what makes per-user runtime
/// prediction work on real systems and here.
struct UserProfile {
  std::string name;
  std::vector<double> class_weights;  // over JobClass
  double typical_nodes = 2.0;         // lognormal median
  double typical_duration_s = 3600.0;
  double walltime_overestimate = 3.0;  // request = runtime * this (+noise)
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadParams& params);

  /// Jobs submitted during [now, now+dt).
  std::vector<JobSpec> generate(TimePoint now, Duration dt);

  /// Generates a complete trace of `count` jobs starting at time 0 (for
  /// offline experiments that do not need the live simulator).
  std::vector<JobSpec> generate_trace(std::size_t count);

  const std::vector<UserProfile>& users() const { return users_; }
  std::uint64_t jobs_generated() const { return next_id_ - 1; }

  /// Builds the phase profile for a class (exposed for tests).
  static std::vector<JobPhase> make_phases(JobClass c, Duration total,
                                           Rng& rng);

 private:
  JobSpec make_job(TimePoint submit);
  double arrival_rate_per_second(TimePoint now) const;

  WorkloadParams params_;
  std::vector<UserProfile> users_;
  Rng rng_;
  std::uint64_t next_id_ = 1;
  double arrival_carry_ = 0.0;  // fractional expected arrivals carried over
};

}  // namespace oda::sim
