#include "sim/engine.hpp"

#include <algorithm>

namespace oda::sim {

void KnobRegistry::add(KnobDef knob) {
  ODA_REQUIRE(!contains(knob.path), "duplicate knob path: " + knob.path);
  knobs_.push_back(std::move(knob));
}

void KnobRegistry::add_all(KnobProvider& provider) {
  std::vector<KnobDef> defs;
  provider.enumerate_knobs(defs);
  for (auto& d : defs) add(std::move(d));
}

bool KnobRegistry::contains(const std::string& path) const {
  return std::any_of(knobs_.begin(), knobs_.end(),
                     [&](const KnobDef& k) { return k.path == path; });
}

std::vector<std::string> KnobRegistry::paths() const {
  std::vector<std::string> out;
  out.reserve(knobs_.size());
  for (const auto& k : knobs_) out.push_back(k.path);
  return out;
}

const KnobDef& KnobRegistry::at(const std::string& path) const {
  for (const auto& k : knobs_) {
    if (k.path == path) return k;
  }
  throw ContractError("unknown knob: " + path);
}

double KnobRegistry::get(const std::string& path) const { return at(path).get(); }

void KnobRegistry::set(const std::string& path, double value) {
  const KnobDef& k = at(path);
  k.set(std::clamp(value, k.min_value, k.max_value));
}

}  // namespace oda::sim
