// Batch scheduler: job queue with FCFS or EASY-backfill discipline and a
// pluggable placement policy (which nodes a starting job gets). Placement is
// the hook the prescriptive pillar uses for power/thermal-aware scheduling.
//
// Job lifecycle: submitted → queued → running → completed
// (finished | killed_walltime | failed_oom).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace oda::sim {

enum class QueueDiscipline { kFcfs, kEasyBackfill };

enum class JobOutcome { kFinished, kKilledWalltime, kFailedOom };

struct RunningJob {
  JobSpec spec;
  TimePoint start_time = 0;
  std::vector<std::size_t> nodes;
  double progress_s = 0.0;  // nominal work completed (seconds)
  double energy_j = 0.0;

  /// Phase active at the current progress point.
  const JobPhase& current_phase() const;
  /// Resident memory for leak-class jobs grows linearly with elapsed time.
  double mem_used_gb(TimePoint now) const;
};

struct JobRecord {
  JobSpec spec;
  TimePoint start_time = 0;
  TimePoint end_time = 0;
  std::vector<std::size_t> nodes;
  double energy_j = 0.0;
  JobOutcome outcome = JobOutcome::kFinished;

  Duration wait_time() const { return start_time - spec.submit_time; }
  Duration run_time() const { return end_time - start_time; }
};

/// A placement decision: which free nodes the job should occupy. Returning
/// nullopt means "cannot place now". Implementations must return exactly
/// spec.nodes_requested distinct free node indices.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::optional<std::vector<std::size_t>> place(
      const JobSpec& spec, const std::vector<bool>& node_busy) = 0;
  virtual const char* name() const = 0;
};

/// First-fit: lowest-index free nodes. The baseline against which the
/// prescriptive placement policies are compared.
class FirstFitPlacement : public PlacementPolicy {
 public:
  std::optional<std::vector<std::size_t>> place(
      const JobSpec& spec, const std::vector<bool>& node_busy) override;
  const char* name() const override { return "first-fit"; }
};

struct SchedulerParams {
  QueueDiscipline discipline = QueueDiscipline::kEasyBackfill;
  /// Jobs whose wall clock exceeds their request by this factor are killed
  /// (1.0 = strict enforcement, as on production systems).
  double walltime_grace = 1.0;
};

class Scheduler : public SensorProvider {
 public:
  Scheduler(std::size_t node_count, const SchedulerParams& params);

  void set_placement(std::shared_ptr<PlacementPolicy> placement);
  PlacementPolicy& placement() { return *placement_; }

  void submit(JobSpec spec);
  /// Starts queued jobs onto free nodes per the discipline + placement.
  void schedule(TimePoint now);

  /// Advances a running job by `work_s` nominal seconds and `energy_j`
  /// joules; called by the cluster once per step per job.
  void advance_job(std::uint64_t job_id, double work_s, double energy_j);

  /// Retires jobs that finished / blew their walltime / OOMed during the
  /// step ending at `now`. Returns records of the jobs retired this call.
  std::vector<JobRecord> reap(TimePoint now, double node_memory_capacity_gb);

  const std::deque<JobSpec>& queue() const { return queue_; }
  const std::vector<RunningJob>& running() const { return running_; }
  std::vector<RunningJob>& running_mutable() { return running_; }
  const std::vector<JobRecord>& completed() const { return completed_; }
  const std::vector<bool>& node_busy() const { return node_busy_; }

  std::size_t free_node_count() const;
  std::size_t node_count() const { return node_busy_.size(); }

  void enumerate_sensors(std::vector<SensorDef>& out) const override;

 private:
  bool try_start(const JobSpec& spec, TimePoint now);
  /// EASY reservation: earliest time the head job could start, assuming
  /// running jobs end exactly at their walltime limit.
  TimePoint shadow_time(const JobSpec& head, TimePoint now) const;

  SchedulerParams params_;
  std::shared_ptr<PlacementPolicy> placement_;
  std::vector<bool> node_busy_;
  std::deque<JobSpec> queue_;
  std::vector<RunningJob> running_;
  std::vector<JobRecord> completed_;
  std::size_t backfilled_count_ = 0;
};

}  // namespace oda::sim
