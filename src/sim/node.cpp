#include "sim/node.hpp"

#include <algorithm>
#include <cmath>

namespace oda::sim {

Node::Node(std::string path_prefix, const NodeParams& params)
    : prefix_(std::move(path_prefix)), params_(params),
      freq_setpoint_ghz_(params.freq_nominal_ghz),
      effective_freq_ghz_(params.freq_nominal_ghz) {}

void Node::step(const NodeDemand& demand, double inlet_temp_c, Duration dt) {
  cpu_util_ = demand.busy ? demand.cpu_util : 0.0;
  mem_bw_util_ = demand.busy ? demand.mem_bw_util : 0.0;
  net_util_ = demand.busy ? demand.net_util : 0.0;
  io_util_ = demand.busy ? demand.io_util : 0.0;
  gpu_util_ = demand.busy ? demand.gpu_util : 0.0;
  mem_used_gb_ = demand.busy ? std::min(demand.mem_used_gb, params_.memory_capacity_gb)
                             : 2.0;

  // Thermal throttling: drop to minimum frequency while over the limit.
  throttled_ = cpu_temp_c_ >= params_.throttle_temp_c;
  effective_freq_ghz_ = throttled_ ? params_.freq_min_ghz : freq_setpoint_ghz_;

  // Dynamic power: utilization times the DVFS scaling curve.
  const double f_ratio = effective_freq_ghz_ / params_.freq_max_ghz;
  const double f_scale = std::pow(f_ratio, params_.freq_power_exponent);
  const double cpu_dynamic = params_.cpu_max_dynamic_w * cpu_util_ * f_scale;
  const double gpu_power =
      params_.has_gpu
          ? params_.gpu_idle_w + params_.gpu_max_dynamic_w * gpu_util_
          : 0.0;
  const double mem_power = params_.mem_max_power_w * mem_bw_util_;
  const double nic_power = params_.nic_max_power_w * net_util_;

  // Leakage grows with die temperature — this is what makes hot-water
  // cooling setpoints a genuine trade-off.
  const double leakage =
      params_.leakage_w_per_k * std::max(0.0, cpu_temp_c_ - params_.leakage_onset_c);

  // Fan controller: proportional response to the temperature error, with
  // the failed-fan fault pinning the speed low.
  if (fan_failed_) {
    fan_speed_ = 0.12;
  } else {
    const double error = cpu_temp_c_ - params_.fan_target_temp_c;
    const double target = std::clamp(0.3 + 0.06 * error, 0.15, 1.0);
    // First-order lag so the fan does not chatter.
    fan_speed_ += std::clamp(target - fan_speed_, -0.2, 0.2);
  }
  const double fan_power =
      params_.fan_max_power_w * fan_speed_ * fan_speed_ * fan_speed_;

  power_w_ = params_.idle_power_w + cpu_dynamic + gpu_power + mem_power +
             nic_power + leakage + fan_power;

  // Thermal RC update: airflow improves the CPU→inlet thermal resistance.
  const double airflow_factor = 0.35 + 0.65 * fan_speed_;
  const double r_th = params_.thermal_resistance_k_per_w * thermal_degradation_ /
                      airflow_factor;
  // Heat into the package (CPU dynamic + leakage share).
  const double package_heat = cpu_dynamic + leakage + 0.3 * mem_power;
  const double t_steady = inlet_temp_c + package_heat * r_th;
  const double tau = params_.thermal_capacity_j_per_k * r_th;
  const double decay = std::exp(-static_cast<double>(dt) / std::max(tau, 1.0));
  cpu_temp_c_ = t_steady + (cpu_temp_c_ - t_steady) * decay;

  energy_j_ += power_w_ * static_cast<double>(dt);

  // Progress: frequency-sensitive part scales with f/f_nominal; the
  // memory/IO-bound fraction does not. Network contention stretches the
  // communication share of the phase.
  if (demand.busy) {
    const double f_perf = effective_freq_ghz_ / params_.freq_nominal_ghz;
    const double b = demand.mem_boundedness;
    const double freq_factor = (1.0 - b) * f_perf + b;
    progress_rate_ = freq_factor * std::clamp(demand.contention, 0.05, 1.0);
  } else {
    progress_rate_ = 0.0;
  }
}

void Node::enumerate_sensors(std::vector<SensorDef>& out) const {
  const auto add = [&](const char* leaf, const char* unit, auto getter) {
    out.push_back({prefix_ + "/" + leaf, unit, getter});
  };
  add("power", "W", [this] { return power_w_; });
  add("cpu_temp", "degC", [this] { return cpu_temp_c_; });
  add("cpu_util", "ratio", [this] { return cpu_util_; });
  add("mem_bw_util", "ratio", [this] { return mem_bw_util_; });
  add("net_util", "ratio", [this] { return net_util_; });
  add("io_util", "ratio", [this] { return io_util_; });
  add("fan_speed", "ratio", [this] { return fan_speed_; });
  add("cpu_freq", "GHz", [this] { return effective_freq_ghz_; });
  add("mem_used", "GB", [this] { return mem_used_gb_; });
  add("throttled", "bool", [this] { return throttled_ ? 1.0 : 0.0; });
  if (params_.has_gpu) {
    add("gpu_util", "ratio", [this] { return gpu_util_; });
  }
}

void Node::enumerate_knobs(std::vector<KnobDef>& out) {
  KnobDef freq;
  freq.path = prefix_ + "/freq_setpoint";
  freq.unit = "GHz";
  freq.min_value = params_.freq_min_ghz;
  freq.max_value = params_.freq_max_ghz;
  freq.get = [this] { return freq_setpoint_ghz_; };
  freq.set = [this](double v) { freq_setpoint_ghz_ = v; };
  out.push_back(std::move(freq));
}

}  // namespace oda::sim
