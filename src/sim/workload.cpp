#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oda::sim {

const char* job_class_name(JobClass c) {
  switch (c) {
    case JobClass::kComputeBound: return "compute";
    case JobClass::kMemoryBound: return "memory";
    case JobClass::kNetworkBound: return "network";
    case JobClass::kIoBound: return "io";
    case JobClass::kGpuCompute: return "gpu";
    case JobClass::kCryptoMiner: return "miner";
    case JobClass::kMemoryLeak: return "leak";
    case JobClass::kCount: break;
  }
  return "?";
}

Duration JobSpec::nominal_duration() const {
  Duration total = 0;
  for (const auto& p : phases) total += p.nominal_duration;
  return total;
}

namespace {

JobPhase base_phase(JobClass c, Rng& rng) {
  JobPhase p;
  const auto jitter = [&rng](double v, double rel) {
    return std::clamp(v * (1.0 + rng.normal(0.0, rel)), 0.02, 1.0);
  };
  switch (c) {
    case JobClass::kComputeBound:
      p.cpu_util = jitter(0.92, 0.05);
      p.mem_bw_util = jitter(0.25, 0.2);
      p.net_util = jitter(0.1, 0.3);
      p.io_util = 0.02;
      p.mem_boundedness = rng.uniform(0.05, 0.2);
      break;
    case JobClass::kMemoryBound:
      p.cpu_util = jitter(0.65, 0.1);
      p.mem_bw_util = jitter(0.9, 0.05);
      p.net_util = jitter(0.15, 0.3);
      p.io_util = 0.03;
      p.mem_boundedness = rng.uniform(0.55, 0.85);
      break;
    case JobClass::kNetworkBound:
      p.cpu_util = jitter(0.55, 0.1);
      p.mem_bw_util = jitter(0.35, 0.2);
      p.net_util = jitter(0.85, 0.1);
      p.io_util = 0.05;
      p.mem_boundedness = rng.uniform(0.3, 0.5);
      break;
    case JobClass::kIoBound:
      p.cpu_util = jitter(0.3, 0.15);
      p.mem_bw_util = jitter(0.2, 0.2);
      p.net_util = jitter(0.3, 0.2);
      p.io_util = jitter(0.85, 0.1);
      p.mem_boundedness = rng.uniform(0.6, 0.9);
      break;
    case JobClass::kGpuCompute:
      p.cpu_util = jitter(0.35, 0.15);
      p.gpu_util = jitter(0.9, 0.05);
      p.mem_bw_util = jitter(0.4, 0.15);
      p.net_util = jitter(0.2, 0.3);
      p.io_util = 0.04;
      p.mem_boundedness = rng.uniform(0.4, 0.7);
      break;
    case JobClass::kCryptoMiner:
      // The miner signature: pegged CPU, almost no memory/network/IO
      // activity, and no phase structure.
      p.cpu_util = jitter(0.99, 0.005);
      p.mem_bw_util = jitter(0.06, 0.1);
      p.net_util = 0.01;
      p.io_util = 0.005;
      p.mem_boundedness = 0.02;
      break;
    case JobClass::kMemoryLeak:
      // Starts like a compute job; the leak itself is modelled by the node
      // (resident memory ramps until the job dies or finishes).
      p.cpu_util = jitter(0.8, 0.1);
      p.mem_bw_util = jitter(0.45, 0.15);
      p.net_util = jitter(0.1, 0.3);
      p.io_util = 0.03;
      p.mem_boundedness = rng.uniform(0.3, 0.5);
      break;
    case JobClass::kCount:
      break;
  }
  return p;
}

}  // namespace

std::vector<JobPhase> WorkloadGenerator::make_phases(JobClass c, Duration total,
                                                     Rng& rng) {
  std::vector<JobPhase> phases;
  // Real applications alternate compute/communication/IO phases; miners do
  // not — a structural difference the fingerprinting diagnostics exploit.
  std::size_t n_phases = 1;
  if (c != JobClass::kCryptoMiner) {
    n_phases = static_cast<std::size_t>(rng.uniform_int(2, 6));
  }
  // Split the total duration with random weights.
  std::vector<double> weights(n_phases);
  double wsum = 0.0;
  for (auto& w : weights) {
    w = rng.uniform(0.5, 1.5);
    wsum += w;
  }
  Duration assigned = 0;
  for (std::size_t i = 0; i < n_phases; ++i) {
    JobPhase p = base_phase(c, rng);
    if (i + 1 == n_phases) {
      p.nominal_duration = total - assigned;
    } else {
      p.nominal_duration =
          std::max<Duration>(1, static_cast<Duration>(
                                    static_cast<double>(total) * weights[i] / wsum));
    }
    assigned += p.nominal_duration;
    // Phase-to-phase variation: alternate between "work" and "exchange"
    // flavours for network/IO-heavy codes.
    if (n_phases > 1 && i % 2 == 1 && c != JobClass::kCryptoMiner) {
      p.net_util = std::min(1.0, p.net_util * 1.8 + 0.1);
      p.cpu_util *= 0.6;
    }
    phases.push_back(p);
    if (assigned >= total) break;
  }
  return phases;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadParams& params)
    : params_(params), rng_(params.seed) {
  ODA_REQUIRE(params.user_count > 0, "workload needs users");
  ODA_REQUIRE(params.max_duration >= params.min_duration, "duration range inverted");
  const std::size_t n_classes = static_cast<std::size_t>(JobClass::kCount);

  for (std::size_t u = 0; u < params.user_count; ++u) {
    UserProfile profile;
    profile.name = "user" + std::to_string(100 + u);
    // Each user favours 1-2 job classes (domain scientists run the same
    // codes over and over), never the anomalous classes.
    profile.class_weights.assign(n_classes, 0.05);
    profile.class_weights[static_cast<std::size_t>(JobClass::kCryptoMiner)] = 0.0;
    profile.class_weights[static_cast<std::size_t>(JobClass::kMemoryLeak)] = 0.0;
    const auto favourite = static_cast<std::size_t>(rng_.uniform_int(0, 4));
    profile.class_weights[favourite] += 1.0;
    if (rng_.bernoulli(0.4)) {
      const auto second = static_cast<std::size_t>(rng_.uniform_int(0, 4));
      profile.class_weights[second] += 0.5;
    }
    profile.typical_nodes = rng_.uniform(1.0, static_cast<double>(
                                                  std::max<std::size_t>(
                                                      2, params.max_nodes_per_job / 2)));
    const double dur_lo = static_cast<double>(params.min_duration);
    const double dur_hi = std::max(static_cast<double>(params.max_duration) * 0.4,
                                   dur_lo * 1.01);
    profile.typical_duration_s = rng_.uniform(dur_lo, dur_hi);
    profile.walltime_overestimate = rng_.uniform(1.2, 6.0);
    users_.push_back(std::move(profile));
  }
}

double WorkloadGenerator::arrival_rate_per_second(TimePoint now) const {
  const double day_frac =
      static_cast<double>(now % kDay) / static_cast<double>(kDay);
  // Submissions peak mid-afternoon, trough overnight: 0.35 + 0.65 * bump.
  const double bump = 0.5 * (1.0 + std::cos(2.0 * M_PI * (day_frac - 0.58)));
  const double modulation = 0.35 + 0.65 * bump;
  return params_.peak_arrival_rate_per_hour * modulation / 3600.0;
}

JobSpec WorkloadGenerator::make_job(TimePoint submit) {
  JobSpec job;
  job.id = next_id_++;
  job.submit_time = submit;

  // Anomalous jobs are injected independently of the user population.
  const double anomaly_roll = rng_.uniform();
  if (anomaly_roll < params_.miner_fraction) {
    job.job_class = JobClass::kCryptoMiner;
  } else if (anomaly_roll < params_.miner_fraction + params_.leak_fraction) {
    job.job_class = JobClass::kMemoryLeak;
  }

  const auto user_idx = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(users_.size()) - 1));
  const UserProfile& user = users_[user_idx];
  job.user = user.name;

  if (job.job_class != JobClass::kCryptoMiner &&
      job.job_class != JobClass::kMemoryLeak) {
    job.job_class = static_cast<JobClass>(rng_.categorical(user.class_weights));
  }

  // Size: lognormal around the user's typical scale, clamped to limits.
  const double nodes = rng_.lognormal(std::log(user.typical_nodes), 0.6);
  job.nodes_requested = std::clamp<std::size_t>(
      static_cast<std::size_t>(nodes + 0.5), 1, params_.max_nodes_per_job);
  if (job.job_class == JobClass::kCryptoMiner) job.nodes_requested = 1;

  const double duration = rng_.lognormal(std::log(user.typical_duration_s), 0.8);
  const auto nominal = std::clamp<Duration>(
      static_cast<Duration>(duration), params_.min_duration, params_.max_duration);

  job.phases = make_phases(job.job_class, nominal, rng_);

  // Users overestimate walltime by a stable per-user factor with noise.
  const double request = static_cast<double>(nominal) *
                         user.walltime_overestimate *
                         std::exp(rng_.normal(0.0, 0.15));
  job.walltime_requested = std::max<Duration>(
      static_cast<Duration>(request), nominal + kMinute);

  job.queue = job.nodes_requested <= 2      ? "small"
              : job.nodes_requested <= 8    ? "medium"
                                            : "large";
  return job;
}

std::vector<JobSpec> WorkloadGenerator::generate(TimePoint now, Duration dt) {
  std::vector<JobSpec> out;
  // Thinned Poisson process: expected arrivals this step, carrying the
  // fractional remainder so low rates still produce jobs eventually.
  arrival_carry_ += arrival_rate_per_second(now) * static_cast<double>(dt);
  const auto n = rng_.poisson(arrival_carry_);
  arrival_carry_ = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const TimePoint submit = now + rng_.uniform_int(0, std::max<Duration>(dt - 1, 0));
    out.push_back(make_job(submit));
  }
  std::sort(out.begin(), out.end(), [](const JobSpec& a, const JobSpec& b) {
    return a.submit_time < b.submit_time;
  });
  return out;
}

std::vector<JobSpec> WorkloadGenerator::generate_trace(std::size_t count) {
  std::vector<JobSpec> out;
  out.reserve(count);
  TimePoint t = 0;
  while (out.size() < count) {
    const double rate = arrival_rate_per_second(t);
    t += std::max<Duration>(1, static_cast<Duration>(rng_.exponential(rate)));
    out.push_back(make_job(t));
  }
  return out;
}

}  // namespace oda::sim
