// Top-level assembly of the simulated HPC data center: weather + facility
// (building-infrastructure pillar), racks of nodes and the network fabric
// (system-hardware pillar), the scheduler (system-software pillar), and the
// workload generator (applications pillar) — one component per pillar of the
// 4-Pillar Framework, which is exactly why the ODA grid maps cleanly onto it.
//
// Telemetry is read through read_sensor()/sample_all(), which apply the
// fault injector's sensor overlays; analytics therefore sees lying sensors
// exactly as a production monitoring system would.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"
#include "sim/facility.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"
#include "sim/weather.hpp"
#include "sim/workload.hpp"

namespace oda::sim {

/// Outcome of one failure-aware sensor read attempt (try_read_sensor).
struct SensorReadResult {
  bool ok = true;          // false => dropout: no value was produced
  double value = 0.0;      // fault-overlaid reading; valid only when ok
  double latency_s = 0.0;  // simulated latency this attempt cost (stalls)
};

struct ClusterParams {
  std::size_t racks = 4;
  std::size_t nodes_per_rack = 16;
  double gpu_node_fraction = 0.25;  // last fraction of each rack has GPUs
  Duration dt = 15;
  std::uint64_t seed = 1;

  WeatherParams weather;
  WorkloadParams workload;
  SchedulerParams scheduler;
  FacilityParams facility;
  NodeParams node;
  double uplink_capacity_gbps = 800.0;
  double nic_capacity_gbps = 100.0;

  /// Rack air/water heat-exchanger offset: node inlet = supply + offset.
  double rack_inlet_offset_c = 5.0;
  /// Extra inlet rise at full rack utilization (local hotspot coupling);
  /// this is what thermal-aware placement exploits.
  double rack_thermal_coupling_c = 7.0;
};

class ClusterSimulation {
 public:
  explicit ClusterSimulation(const ClusterParams& params);

  // -- time ------------------------------------------------------------------
  void step();
  void run_for(Duration d);
  TimePoint now() const { return now_; }
  Duration dt() const { return params_.dt; }

  // -- monitoring plane --------------------------------------------------------
  /// All sensor definitions (stable order, fault-free raw readers).
  const std::vector<SensorDef>& sensors() const { return sensors_; }
  /// Reading with the fault overlay applied — what ODA should consume.
  double read_sensor(const std::string& path);
  /// Same, but drawing overlay randomness (spike/noise faults) from the
  /// caller's Rng instead of the simulation stream. Safe to call from many
  /// threads at once over a quiescent simulator (between step()s) — the
  /// collector's parallel read path uses one split Rng per chunk.
  double read_sensor(const std::string& path, Rng& rng) const;
  /// Failure-aware read: rolls the injector's read faults (dropout/stall)
  /// before producing a value. With no read fault active on `path` this is
  /// exactly read_sensor() — same value, same random stream, zero latency —
  /// so fault-free pipelines behave bit-identically to the plain read.
  SensorReadResult try_read_sensor(const std::string& path);
  SensorReadResult try_read_sensor(const std::string& path, Rng& rng) const;
  bool has_sensor(const std::string& path) const;
  /// Samples every sensor (fault overlay applied).
  std::vector<std::pair<std::string, double>> sample_all();

  // -- control plane ------------------------------------------------------------
  KnobRegistry& knobs() { return knobs_; }

  // -- part access (experiments / ground truth) --------------------------------
  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  Facility& facility() { return facility_; }
  Weather& weather() { return weather_; }
  Network& network() { return network_; }
  FaultInjector& faults() { return faults_; }
  WorkloadGenerator& workload() { return workload_; }
  Node& node(std::size_t i) { return *nodes_.at(i); }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t rack_count() const { return params_.racks; }
  std::size_t rack_of(std::size_t node_idx) const {
    return node_idx / params_.nodes_per_rack;
  }
  const ClusterParams& params() const { return params_; }

  double it_power_w() const { return it_power_w_; }
  double rack_power_w(std::size_t rack) const { return rack_power_w_.at(rack); }
  double rack_inlet_temp_c(std::size_t rack) const {
    return rack_inlet_c_.at(rack);
  }
  /// Facility energy integrated since construction (J).
  double facility_energy_j() const { return facility_energy_j_; }
  double it_energy_j() const { return it_energy_j_; }

  /// Disables automatic workload generation (manual submit via scheduler()).
  void set_workload_enabled(bool enabled) { workload_enabled_ = enabled; }

 private:
  void build_sensors();
  void apply_component_fault(const FaultEvent& event, bool activate);
  void update_rack_inlets();

  ClusterParams params_;
  Rng rng_;

  Weather weather_;
  Facility facility_;
  Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<Scheduler> scheduler_;
  WorkloadGenerator workload_;
  FaultInjector faults_;
  KnobRegistry knobs_;

  std::vector<SensorDef> sensors_;
  std::map<std::string, std::size_t> sensor_index_;

  TimePoint now_ = 0;
  bool workload_enabled_ = true;
  double it_power_w_ = 0.0;
  std::vector<double> rack_power_w_;
  std::vector<double> rack_inlet_c_;
  double facility_energy_j_ = 0.0;
  double it_energy_j_ = 0.0;
};

/// Convenience: node sensor path, e.g. node_path(0, 3) == "rack00/node03".
std::string node_path(std::size_t rack, std::size_t node_in_rack);

}  // namespace oda::sim
