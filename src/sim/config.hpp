// Config binding for the simulator: build ClusterParams from flat
// "section.key = value" text so experiments are scriptable without
// recompiling (the bench binaries bake their parameters in for
// reproducibility; the examples accept config files through this).
#pragma once

#include "common/config.hpp"
#include "sim/cluster.hpp"

namespace oda::sim {

/// Applies every recognized key of `config` on top of the defaults (or on
/// top of `base` in the two-argument form). Unknown keys throw ConfigError
/// so typos do not silently run the wrong experiment.
ClusterParams cluster_params_from_config(const Config& config);
ClusterParams cluster_params_from_config(const Config& config,
                                         ClusterParams base);

/// The full parameter set of `params` as config text (round-trips through
/// cluster_params_from_config).
Config cluster_params_to_config(const ClusterParams& params);

}  // namespace oda::sim
