// Fault injection with ground truth. Two families:
//  * sensor faults — applied as an overlay when telemetry is read (the
//    component keeps operating correctly, only its reading lies);
//  * component faults — applied to the physical model (fan failure, pump
//    degradation, ...) so real physical symptoms propagate into telemetry.
// Every injected fault is recorded with its active window, which is what
// lets the benchmark harness score diagnostic analytics (precision/recall).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace oda::sim {

enum class FaultKind {
  // Sensor-level (overlay on readings).
  kSensorStuck = 0,   // reading frozen at the value when the fault began
  kSensorDrift,       // reading drifts linearly (magnitude = units/hour)
  kSensorSpike,       // intermittent large spikes (magnitude = spike size)
  kSensorNoise,       // extra gaussian noise (magnitude = stddev)
  // Component-level (physical behaviour changes).
  kFanFailure,        // target = node path
  kThermalDegradation,  // target = node path; magnitude = R_th multiplier
  kPumpDegradation,   // magnitude = power/inertia multiplier
  kChillerFouling,    // magnitude = COP penalty
  kNetworkDegradation,  // target = rack index as string; magnitude = capacity factor
};

const char* fault_kind_name(FaultKind k);
/// True for the kinds applied as sensor-reading overlays.
bool is_sensor_fault(FaultKind k);

struct FaultEvent {
  FaultKind kind{};
  /// Sensor path for sensor faults; component selector otherwise.
  std::string target;
  TimePoint start = 0;
  TimePoint end = 0;
  double magnitude = 1.0;

  bool active_at(TimePoint t) const { return t >= start && t < end; }
};

/// Applies sensor-fault overlays and drives component fault hooks. The
/// cluster registers one apply/clear callback pair per component-fault kind.
class FaultInjector {
 public:
  using ComponentHook = std::function<void(const FaultEvent&, bool activate)>;

  void schedule(FaultEvent event);
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Registers the handler invoked when a component fault starts/ends.
  void set_component_hook(ComponentHook hook) { hook_ = std::move(hook); }

  /// Activates/deactivates component faults crossing boundaries in
  /// (prev, now].
  void step(TimePoint prev, TimePoint now);

  /// Transforms a raw sensor reading according to the sensor faults active
  /// at `now` for `path`.
  double apply_sensor_faults(const std::string& path, double raw,
                             TimePoint now, Rng& rng) const;

  /// Ground truth: faults of any kind active at `t` (optionally filtered to
  /// those touching the given path/target).
  std::vector<FaultEvent> active_at(TimePoint t) const;
  bool any_active_at(TimePoint t, const std::string& target_prefix) const;

 private:
  std::vector<FaultEvent> events_;
  std::vector<bool> activated_;  // component faults currently applied
  ComponentHook hook_;
  // Per stuck-fault frozen value, keyed by event index (lazily captured).
  mutable std::vector<double> stuck_values_;
  mutable std::vector<bool> stuck_captured_;
};

}  // namespace oda::sim
