// Fault injection with ground truth. Two families:
//  * sensor faults — applied as an overlay when telemetry is read (the
//    component keeps operating correctly, only its reading lies);
//  * component faults — applied to the physical model (fan failure, pump
//    degradation, ...) so real physical symptoms propagate into telemetry.
// Every injected fault is recorded with its active window, which is what
// lets the benchmark harness score diagnostic analytics (precision/recall).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sync.hpp"
#include "common/types.hpp"

namespace oda::sim {

enum class FaultKind {
  // Sensor-level (overlay on readings).
  kSensorStuck = 0,   // reading frozen at the value when the fault began
  kSensorDrift,       // reading drifts linearly (magnitude = units/hour)
  kSensorSpike,       // intermittent large spikes (magnitude = spike size)
  kSensorNoise,       // extra gaussian noise (magnitude = stddev)
  // Sensor-level read faults (the *read itself* fails or stalls; the value,
  // when one is produced, is unaffected).
  kSensorDropout,     // read yields no value (magnitude = per-read failure
                      // probability, clamped to [0,1])
  kSensorStall,       // read costs simulated latency (magnitude = seconds,
                      // jittered ±20%); consumers enforce their own deadline
  // Component-level (physical behaviour changes).
  kFanFailure,        // target = node path
  kThermalDegradation,  // target = node path; magnitude = R_th multiplier
  kPumpDegradation,   // magnitude = power/inertia multiplier
  kChillerFouling,    // magnitude = COP penalty
  kNetworkDegradation,  // target = rack index as string; magnitude = capacity factor
};

const char* fault_kind_name(FaultKind k);
/// True for the kinds applied as sensor-reading overlays or read faults.
bool is_sensor_fault(FaultKind k);
/// True for the kinds that affect the read outcome (dropout/stall) rather
/// than the value.
bool is_read_fault(FaultKind k);

/// Outcome modifiers for one sensor read attempt (see read_fault_at()).
struct ReadFault {
  bool dropout = false;      // the read produced no value
  double stall_seconds = 0.0;  // simulated latency this attempt cost
};

struct FaultEvent {
  FaultKind kind{};
  /// Sensor path for sensor faults; component selector otherwise.
  std::string target;
  TimePoint start = 0;
  TimePoint end = 0;
  double magnitude = 1.0;

  bool active_at(TimePoint t) const { return t >= start && t < end; }
};

/// Applies sensor-fault overlays and drives component fault hooks. The
/// cluster registers one apply/clear callback pair per component-fault kind.
class FaultInjector {
 public:
  using ComponentHook = std::function<void(const FaultEvent&, bool activate)>;

  FaultInjector() = default;
  // Movable so ClusterSimulation stays movable: the stuck-state mutex is not
  // moved (the destination gets a fresh one), but the source's mutex IS
  // taken while its stuck state is moved out, so a reader concurrently
  // applying overlays on the source observes either the full state or the
  // moved-from empty vectors — never a half-moved vector.
  FaultInjector(FaultInjector&& other) noexcept;
  FaultInjector& operator=(FaultInjector&& other) noexcept;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void schedule(FaultEvent event);
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Registers the handler invoked when a component fault starts/ends.
  void set_component_hook(ComponentHook hook) { hook_ = std::move(hook); }

  /// Activates/deactivates component faults crossing boundaries in
  /// (prev, now].
  void step(TimePoint prev, TimePoint now);

  /// Transforms a raw sensor reading according to the sensor faults active
  /// at `now` for `path`. Thread-safe for concurrent readers as long as each
  /// caller brings its own Rng (the collector's parallel read path does) and
  /// no thread is mutating the schedule; the lazily captured stuck-fault
  /// state is internally locked.
  double apply_sensor_faults(const std::string& path, double raw,
                             TimePoint now, Rng& rng) const;

  /// Rolls the read-fault dice for one read attempt on `path` at `now`:
  /// dropout faults fail the read with their magnitude as probability, stall
  /// faults add jittered simulated latency. Draws from `rng` only while a
  /// read fault is active on `path`, so fault-free runs consume an identical
  /// random stream to a build without this feature. Thread-safety matches
  /// apply_sensor_faults().
  ReadFault read_fault_at(const std::string& path, TimePoint now,
                          Rng& rng) const;

  /// Ground truth: faults of any kind active at `t` (optionally filtered to
  /// those touching the given path/target).
  std::vector<FaultEvent> active_at(TimePoint t) const;
  bool any_active_at(TimePoint t, const std::string& target_prefix) const;

 private:
  std::vector<FaultEvent> events_;
  std::vector<bool> activated_;  // component faults currently applied
  ComponentHook hook_;
  // Per stuck-fault frozen value, keyed by event index (lazily captured
  // during reads, so guarded for the parallel-collector path; only touched
  // when a stuck fault targets the path being read). Leaf lock: nothing is
  // acquired while it is held, so it carries no lock-order rank.
  mutable Mutex stuck_mu_;
  mutable std::vector<double> stuck_values_ ODA_GUARDED_BY(stuck_mu_);
  mutable std::vector<bool> stuck_captured_ ODA_GUARDED_BY(stuck_mu_);
};

}  // namespace oda::sim
