// Two-level fat-tree-style fabric: one edge switch per rack, uplinks to a
// single core layer. Per-step link loads are rebuilt from the traffic of
// running jobs; oversubscribed links slow the jobs crossing them. Link
// counters feed the network-contention diagnostics ([19],[55]).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace oda::sim {

struct NetworkParams {
  std::size_t racks = 4;
  std::size_t nodes_per_rack = 16;
  double nic_capacity_gbps = 100.0;
  /// Aggregate uplink capacity per rack (oversubscription = nodes_per_rack *
  /// nic / uplink).
  double uplink_capacity_gbps = 800.0;
};

class Network : public SensorProvider {
 public:
  explicit Network(const NetworkParams& params);

  std::size_t node_count() const { return params_.racks * params_.nodes_per_rack; }
  std::size_t rack_of(std::size_t node) const { return node / params_.nodes_per_rack; }

  /// Clears per-step traffic state.
  void begin_step();
  /// Registers a job's traffic: each listed node offers `per_node_gbps`; the
  /// share crossing the rack boundary loads that rack's uplink.
  void add_job_traffic(std::uint64_t job_id, const std::vector<std::size_t>& nodes,
                       double per_node_gbps);
  /// Computes link utilizations and per-job contention factors.
  void finalize_step();

  /// Throughput multiplier for the job ([0,1], 1 = no contention). Jobs with
  /// no registered traffic get 1.
  double contention(std::uint64_t job_id) const;

  double uplink_utilization(std::size_t rack) const;
  double total_traffic_gbps() const { return total_traffic_gbps_; }

  /// Fault hook: scales a rack's uplink capacity (e.g. 0.25 = degraded link).
  void set_uplink_degradation(std::size_t rack, double factor);

  void enumerate_sensors(std::vector<SensorDef>& out) const override;

 private:
  NetworkParams params_;
  std::vector<double> uplink_load_gbps_;
  std::vector<double> uplink_degradation_;
  std::map<std::uint64_t, double> job_contention_;
  // Per-job uplink demand recorded during the step: job -> (rack -> gbps).
  std::map<std::uint64_t, std::map<std::size_t, double>> job_rack_demand_;
  double total_traffic_gbps_ = 0.0;
};

}  // namespace oda::sim
