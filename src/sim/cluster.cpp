#include "sim/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oda::sim {

std::string node_path(std::size_t rack, std::size_t node_in_rack) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "rack%02zu/node%02zu", rack, node_in_rack);
  return buf;
}

namespace {

/// Scales the facility's fixed loads (pumps, overhead, design IT power) to
/// the actual machine size so a 8-node test cluster is not saddled with a
/// 64-node plant. Ratios of user-provided values are preserved.
FacilityParams scale_facility(FacilityParams fp, const ClusterParams& cp) {
  const double design_w =
      static_cast<double>(cp.racks * cp.nodes_per_rack) *
      (cp.node.idle_power_w + cp.node.cpu_max_dynamic_w +
       (cp.node.has_gpu ? cp.node.gpu_max_dynamic_w : 0.0) +
       cp.node.mem_max_power_w);
  const double factor = design_w / fp.it_nominal_w;
  fp.it_nominal_w = design_w;
  fp.pump_nominal_w *= factor;
  fp.misc_overhead_w *= factor;
  return fp;
}

}  // namespace

ClusterSimulation::ClusterSimulation(const ClusterParams& params)
    : params_(params),
      rng_(params.seed),
      weather_(params.weather, Rng(params.seed ^ 0x57EA74E2ULL)),
      facility_(scale_facility(params.facility, params)),
      network_(NetworkParams{params.racks, params.nodes_per_rack,
                             params.nic_capacity_gbps,
                             params.uplink_capacity_gbps}),
      workload_([&] {
        WorkloadParams wp = params.workload;
        wp.max_nodes_per_job =
            std::min(wp.max_nodes_per_job, params.racks * params.nodes_per_rack);
        wp.seed ^= params.seed * 0x9E3779B97F4A7C15ULL;
        return wp;
      }()) {
  ODA_REQUIRE(params.racks > 0 && params.nodes_per_rack > 0,
              "cluster needs racks and nodes");
  ODA_REQUIRE(params.dt > 0, "cluster dt must be positive");

  const std::size_t gpu_per_rack = static_cast<std::size_t>(
      params.gpu_node_fraction * static_cast<double>(params.nodes_per_rack));
  for (std::size_t r = 0; r < params.racks; ++r) {
    for (std::size_t n = 0; n < params.nodes_per_rack; ++n) {
      NodeParams np = params.node;
      np.has_gpu = n >= params.nodes_per_rack - gpu_per_rack;
      nodes_.push_back(std::make_unique<Node>(node_path(r, n), np));
    }
  }
  scheduler_ = std::make_unique<Scheduler>(nodes_.size(), params.scheduler);

  rack_power_w_.assign(params.racks, 0.0);
  rack_inlet_c_.assign(params.racks,
                       facility_.supply_temp_c() + params.rack_inlet_offset_c);

  faults_.set_component_hook([this](const FaultEvent& e, bool activate) {
    apply_component_fault(e, activate);
  });

  build_sensors();
  knobs_.add_all(facility_);
  for (auto& node : nodes_) knobs_.add_all(*node);
}

void ClusterSimulation::build_sensors() {
  weather_.enumerate_sensors(sensors_);
  facility_.enumerate_sensors(sensors_);
  network_.enumerate_sensors(sensors_);
  scheduler_->enumerate_sensors(sensors_);
  for (const auto& node : nodes_) node->enumerate_sensors(sensors_);

  sensors_.push_back({"cluster/it_power", "W", [this] { return it_power_w_; }});
  for (std::size_t r = 0; r < params_.racks; ++r) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "rack%02zu/power", r);
    sensors_.push_back({buf, "W", [this, r] { return rack_power_w_[r]; }});
    std::snprintf(buf, sizeof(buf), "rack%02zu/inlet_temp", r);
    sensors_.push_back({buf, "degC", [this, r] { return rack_inlet_c_[r]; }});
  }

  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    ODA_REQUIRE(sensor_index_.emplace(sensors_[i].path, i).second,
                "duplicate sensor path: " + sensors_[i].path);
  }
}

void ClusterSimulation::apply_component_fault(const FaultEvent& event,
                                              bool activate) {
  switch (event.kind) {
    case FaultKind::kFanFailure:
    case FaultKind::kThermalDegradation: {
      for (auto& node : nodes_) {
        if (node->path() == event.target) {
          if (event.kind == FaultKind::kFanFailure) {
            node->set_fan_failed(activate);
          } else {
            node->set_thermal_degradation(activate ? event.magnitude : 1.0);
          }
          return;
        }
      }
      ODA_LOG_WARN << "fault target not found: " << event.target;
      break;
    }
    case FaultKind::kPumpDegradation:
      facility_.set_pump_degradation(activate ? event.magnitude : 1.0);
      break;
    case FaultKind::kChillerFouling:
      facility_.set_chiller_fouling(activate ? event.magnitude : 0.0);
      break;
    case FaultKind::kNetworkDegradation: {
      const auto rack = static_cast<std::size_t>(std::stoul(event.target));
      network_.set_uplink_degradation(rack, activate ? event.magnitude : 1.0);
      break;
    }
    default:
      break;  // sensor faults are handled at read time
  }
}

void ClusterSimulation::update_rack_inlets() {
  // Node inlet = loop supply + HX offset + hotspot term. The hotspot term is
  // quadratic in the rack's load fraction: hot-air recirculation and HX
  // saturation grow superlinearly with rack density, which is what makes
  // concentrating heat in one rack costlier than spreading it (E6).
  const double per_rack_design =
      static_cast<double>(params_.nodes_per_rack) *
      (params_.node.idle_power_w + params_.node.cpu_max_dynamic_w);
  for (std::size_t r = 0; r < params_.racks; ++r) {
    const double load_frac =
        std::clamp(rack_power_w_[r] / per_rack_design, 0.0, 1.2);
    rack_inlet_c_[r] = facility_.supply_temp_c() + params_.rack_inlet_offset_c +
                       params_.rack_thermal_coupling_c * load_frac * load_frac;
  }
}

void ClusterSimulation::step() {
  ODA_TRACE_SPAN_CAT("sim.step", "sim");
  static obs::Histogram& step_seconds = obs::MetricsRegistry::global().histogram(
      "oda_sim_step_seconds", "Wall time of one simulation step");
  static obs::Counter& steps = obs::MetricsRegistry::global().counter(
      "oda_sim_steps_total", "Simulation steps executed");
  const auto step_start = std::chrono::steady_clock::now();

  const Duration dt = params_.dt;
  const TimePoint next = now_ + dt;

  weather_.step(now_, dt);

  if (workload_enabled_) {
    for (auto& job : workload_.generate(now_, dt)) {
      scheduler_->submit(std::move(job));
    }
  }

  faults_.step(now_, next);
  scheduler_->schedule(now_);

  // Network: register per-job traffic from the active phase.
  network_.begin_step();
  for (const auto& job : scheduler_->running()) {
    const JobPhase& phase = job.current_phase();
    network_.add_job_traffic(job.spec.id, job.nodes,
                             phase.net_util * params_.nic_capacity_gbps);
  }
  network_.finalize_step();

  // Map nodes to their occupying job.
  std::vector<const RunningJob*> node_job(nodes_.size(), nullptr);
  for (const auto& job : scheduler_->running()) {
    for (std::size_t n : job.nodes) node_job[n] = &job;
  }

  // Physical node update using the inlet temperatures from the previous
  // step's rack state (explicit coupling, stable for dt << thermal tau).
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeDemand demand;
    if (const RunningJob* job = node_job[i]) {
      const JobPhase& phase = job->current_phase();
      demand.busy = true;
      demand.cpu_util = phase.cpu_util;
      demand.mem_bw_util = phase.mem_bw_util;
      demand.net_util = phase.net_util;
      demand.io_util = phase.io_util;
      demand.gpu_util = phase.gpu_util;
      demand.mem_boundedness = phase.mem_boundedness;
      demand.contention = network_.contention(job->spec.id);
      demand.mem_used_gb = job->mem_used_gb(now_);
    }
    nodes_[i]->step(demand, rack_inlet_c_[rack_of(i)], dt);
  }

  // Advance job progress: a tightly coupled application moves at the pace of
  // its slowest node.
  for (const auto& job : scheduler_->running()) {
    double rate = std::numeric_limits<double>::infinity();
    double power = 0.0;
    for (std::size_t n : job.nodes) {
      rate = std::min(rate, nodes_[n]->progress_rate());
      power += nodes_[n]->power_w();
    }
    if (!std::isfinite(rate)) rate = 0.0;
    scheduler_->advance_job(job.spec.id, rate * static_cast<double>(dt),
                            power * static_cast<double>(dt));
  }

  scheduler_->reap(next, params_.node.memory_capacity_gb);

  // Aggregate power and update the facility.
  it_power_w_ = 0.0;
  std::fill(rack_power_w_.begin(), rack_power_w_.end(), 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    it_power_w_ += nodes_[i]->power_w();
    rack_power_w_[rack_of(i)] += nodes_[i]->power_w();
  }
  facility_.step(it_power_w_, weather_.wetbulb_c(), dt);
  update_rack_inlets();

  it_energy_j_ += it_power_w_ * static_cast<double>(dt);
  facility_energy_j_ += facility_.facility_power_w() * static_cast<double>(dt);

  now_ = next;

  steps.inc();
  step_seconds.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    step_start)
          .count());
}

void ClusterSimulation::run_for(Duration d) {
  const TimePoint target = now_ + d;
  while (now_ < target) step();
}

bool ClusterSimulation::has_sensor(const std::string& path) const {
  return sensor_index_.count(path) != 0;
}

double ClusterSimulation::read_sensor(const std::string& path) {
  return read_sensor(path, rng_);
}

double ClusterSimulation::read_sensor(const std::string& path, Rng& rng) const {
  const auto it = sensor_index_.find(path);
  ODA_REQUIRE(it != sensor_index_.end(), "unknown sensor: " + path);
  const double raw = sensors_[it->second].read();
  return faults_.apply_sensor_faults(path, raw, now_, rng);
}

SensorReadResult ClusterSimulation::try_read_sensor(const std::string& path) {
  return try_read_sensor(path, rng_);
}

SensorReadResult ClusterSimulation::try_read_sensor(const std::string& path,
                                                    Rng& rng) const {
  SensorReadResult result;
  const ReadFault fault = faults_.read_fault_at(path, now_, rng);
  result.latency_s = fault.stall_seconds;
  if (fault.dropout) {
    result.ok = false;
    return result;
  }
  result.value = read_sensor(path, rng);
  return result;
}

std::vector<std::pair<std::string, double>> ClusterSimulation::sample_all() {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(sensors_.size());
  for (const auto& s : sensors_) {
    out.emplace_back(s.path,
                     faults_.apply_sensor_faults(s.path, s.read(), now_, rng_));
  }
  return out;
}

}  // namespace oda::sim
