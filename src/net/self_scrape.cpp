#include "net/self_scrape.hpp"

#include <chrono>
#include <span>
#include <utility>

#include "common/thread_watch.hpp"
#include "telemetry/store.hpp"

namespace oda::net {

namespace {

/// "<prefix><family>" or "<prefix><family>{k=v,...}" (labels arrive sorted
/// from registration). The store treats paths as opaque strings, so the
/// braces survive round trips and "oda/*" glob-matches every series.
std::string series_path(const std::string& prefix, const std::string& family,
                        const obs::LabelSet& labels,
                        const char* suffix = "") {
  std::string path = prefix + family + suffix;
  if (labels.empty()) return path;
  path += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) path += ',';
    first = false;
    path += key;
    path += '=';
    path += value;
  }
  path += '}';
  return path;
}

}  // namespace

SelfScrape::SelfScrape(telemetry::TimeSeriesStore& store,
                       SelfScrapeOptions opts)
    : store_(store),
      opts_(std::move(opts)),
      passes_counter_(obs::MetricsRegistry::global().counter(
          "oda_selfscrape_passes_total",
          "Self-scrape passes over the metrics registry")),
      samples_counter_(obs::MetricsRegistry::global().counter(
          "oda_selfscrape_samples_total",
          "Samples ingested into the store by the self-scrape loop")),
      series_gauge_(obs::MetricsRegistry::global().gauge(
          "oda_selfscrape_series",
          "Series ingested by the most recent self-scrape pass")) {}

SelfScrape::~SelfScrape() { stop(); }

std::size_t SelfScrape::scrape_once(TimePoint now) {
  if (!net_enabled()) return 0;
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::global().snapshot();
  std::vector<telemetry::IdReading> batch;
  batch.reserve(256);
  telemetry::SeriesInterner& interner = telemetry::SeriesInterner::global();
  // Sequential lock sections (metrics above, interner here, store shards in
  // insert_batch) — never nested, so the lock hierarchy is untouched.
  for (const obs::MetricFamily& family : snapshot.families) {
    for (const obs::SeriesValue& value : family.values) {
      const telemetry::SeriesId id = interner.intern(
          series_path(opts_.prefix, family.name, value.labels));
      batch.push_back({id, {now, value.value}});
    }
    for (const obs::HistogramValue& hist : family.histograms) {
      const telemetry::SeriesId sum_id = interner.intern(
          series_path(opts_.prefix, family.name, hist.labels, "_sum"));
      batch.push_back({sum_id, {now, hist.sum}});
      const telemetry::SeriesId count_id = interner.intern(
          series_path(opts_.prefix, family.name, hist.labels, "_count"));
      batch.push_back(
          {count_id, {now, static_cast<double>(hist.count)}});
    }
  }
  store_.insert_batch(std::span<const telemetry::IdReading>(batch));
  passes_.fetch_add(1, std::memory_order_relaxed);
  samples_.fetch_add(batch.size(), std::memory_order_relaxed);
  passes_counter_.inc();
  samples_counter_.inc(batch.size());
  series_gauge_.set(static_cast<double>(batch.size()));
  return batch.size();
}

bool SelfScrape::start(std::function<TimePoint()> clock) {
  if (!net_enabled()) return false;
  if (running_.load(std::memory_order_relaxed)) return false;
  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this, clk = std::move(clock)] { run(clk); });
  return true;
}

void SelfScrape::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

void SelfScrape::run(std::function<TimePoint()> clock) {
  WatchedThreadScope watch("net.self_scrape");
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    scrape_once(clock());
    // Sleep in small slices so stop() returns promptly without a timed
    // condvar (oda::CondVar deliberately has no timed wait).
    double remaining_s = opts_.period_s;
    while (remaining_s > 0.0 &&
           !stop_requested_.load(std::memory_order_relaxed)) {
      const double slice_s = remaining_s < 0.05 ? remaining_s : 0.05;
      std::this_thread::sleep_for(std::chrono::duration<double>(slice_s));
      remaining_s -= slice_s;
    }
  }
}

}  // namespace oda::net
