#include "net/obs_server.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "common/thread_watch.hpp"
#include "obs/exposition.hpp"
#include "obs/health.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "telemetry/store.hpp"
#include "telemetry/wal.hpp"

namespace oda::net {

namespace {

constexpr const char* kContentTypeProm =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kContentTypeJson = "application/json";

/// Routes that get their own oda_http_requests_total{path=} label; every
/// other request is counted as "other".
const char* const kKnownPaths[] = {
    "/",      "/metrics", "/metrics.json", "/healthz",    "/trace",
    "/flight", "/profile", "/varz",        "/selfscrape",
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

ObsServer::ObsServer(ObsServerOptions opts)
    : opts_(std::move(opts)), http_(opts_.http) {}

ObsServer::~ObsServer() { stop(); }

void ObsServer::set_store(const telemetry::TimeSeriesStore* store) {
  store_ = store;
}

bool ObsServer::start() {
  http_.set_path_normalizer([](const HttpRequest& req) -> std::string {
    for (const char* known : kKnownPaths) {
      if (req.path == known) return req.path;
    }
    return "other";
  });
  http_.set_handler([this](const HttpRequest& req, const Responder& r) {
    handle(req, r);
  });
  start_time_ = std::chrono::steady_clock::now();
  return http_.start();
}

void ObsServer::stop() {
  // Worker first: it may still hold a Responder into http_, and send() to
  // a drained connection is a no-op but send() into a destroyed server is
  // not — the join makes http_.stop() safe to follow.
  join_profile_worker();
  http_.stop();
}

void ObsServer::join_profile_worker() {
  MutexLock lock(profile_mu_);
  if (profile_worker_.joinable()) profile_worker_.join();
}

void ObsServer::handle(const HttpRequest& req, const Responder& responder) {
  if (req.method != "GET") {
    HttpResponse resp;
    resp.code = 405;
    resp.body = "observability endpoints are GET-only\n";
    resp.extra_headers.emplace_back("Allow", "GET");
    responder.send(std::move(resp));
    return;
  }
  if (req.path == "/profile") {
    handle_profile(req, responder);
    return;
  }
  responder.send(route(req));
}

HttpResponse ObsServer::route(const HttpRequest& req) {
  HttpResponse resp;
  if (req.path == "/metrics") {
    resp.content_type = kContentTypeProm;
    resp.body = obs::to_prometheus(obs::MetricsRegistry::global().snapshot());
  } else if (req.path == "/metrics.json") {
    resp.content_type = kContentTypeJson;
    resp.body = obs::to_json(obs::MetricsRegistry::global().snapshot());
  } else if (req.path == "/healthz") {
    const obs::PipelineHealthReport report = obs::assess_pipeline_health(
        obs::MetricsRegistry::global().snapshot());
    resp.code = report.healthy() ? 200 : 503;
    resp.body = report.render();
  } else if (req.path == "/trace") {
    obs::Tracer& tracer = obs::Tracer::global();
    resp.content_type = kContentTypeJson;
    resp.body = tracer.to_chrome_json();
    // Drain semantics for scrapers that archive trace windows. Events
    // recorded between snapshot and clear are lost; the scrape cadence
    // bounds the loss, and the alternative (a lock around both) would
    // stall every instrumented thread.
    if (req.query_param("clear") == "1") tracer.clear();
  } else if (req.path == "/flight") {
    resp.content_type = kContentTypeJson;
    resp.body = obs::FlightRecorder::global().to_chrome_json();
  } else if (req.path == "/varz") {
    resp = varz();
  } else if (req.path == "/selfscrape") {
    resp = selfscrape_dump();
  } else if (req.path == "/") {
    resp.body =
        "oda observability endpoints:\n"
        "  /metrics /metrics.json /healthz /trace /profile?seconds=N\n"
        "  /flight /varz /selfscrape\n";
  } else {
    resp.code = 404;
    resp.body = "unknown endpoint: " + req.path + "\n";
  }
  return resp;
}

bool ObsServer::handle_profile(const HttpRequest& req,
                               const Responder& responder) {
  double seconds = 1.0;
  const std::string param = req.query_param("seconds");
  if (!param.empty()) {
    char* end = nullptr;
    const double parsed = std::strtod(param.c_str(), &end);
    if (end == nullptr || *end != '\0' || !(parsed > 0.0)) {
      HttpResponse resp;
      resp.code = 400;
      resp.body = "seconds must be a positive number\n";
      responder.send(std::move(resp));
      return true;
    }
    seconds = parsed;
  }
  seconds = std::clamp(seconds, 0.05, opts_.max_profile_seconds);
  // acq_rel: the winner of the exchange owns the (process-global) profiler
  // until it stores false; losers answer 409 without touching it.
  if (profile_busy_.exchange(true, std::memory_order_acq_rel)) {
    HttpResponse resp;
    resp.code = 409;
    resp.body = "a profile run is already in progress\n";
    responder.send(std::move(resp));
    return true;
  }
  MutexLock lock(profile_mu_);
  if (profile_worker_.joinable()) profile_worker_.join();  // reap previous
  Responder deferred = responder;
  profile_worker_ = std::thread([this, seconds, deferred] {
    obs::SamplingProfiler& profiler = obs::SamplingProfiler::global();
    HttpResponse resp;
    // Piggyback when the process already profiles itself (self_monitor
    // starts the global profiler for its whole run): folded() is a safe
    // seqlock snapshot while running, so the window just waits and reads
    // the accumulated stacks instead of fighting over start()/stop().
    const bool piggyback = profiler.running();
    if (!piggyback && !profiler.start(obs::ProfilerOptions{})) {
      resp.code = 503;
      resp.body = "profiler unavailable (ODA_PROFILE=OFF)\n";
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
      if (!piggyback) profiler.stop();
      resp.body = profiler.folded();
      if (resp.body.empty()) resp.body = "(no samples)\n";
    }
    deferred.send(std::move(resp));
    profile_busy_.store(false, std::memory_order_release);
  });
  return true;
}

HttpResponse ObsServer::varz() const {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  std::map<std::string, int> roles;
  ThreadWatchRegistry::global().for_each(
      [&roles](WatchedThread& t) { roles[t.role] += 1; });
  const HttpServer::Stats stats = http_.stats();

  std::string body = "{\n";
  body += "  \"pid\": " + std::to_string(::getpid()) + ",\n";
  body += "  \"uptime_seconds\": " + format_double(uptime_s) + ",\n";
  body += "  \"build\": {";
  body += std::string("\"tracing\": ") +
          (ODA_TRACING_ENABLED ? "true" : "false");
  body += std::string(", \"profiling\": ") +
          (ODA_PROFILING_ENABLED ? "true" : "false");
  body += std::string(", \"wal\": ") +
          (telemetry::wal_enabled() ? "true" : "false");
  body += std::string(", \"net\": ") + (net_enabled() ? "true" : "false");
  body += "},\n";
  body += "  \"threads\": {\"watched\": " +
          std::to_string(ThreadWatchRegistry::global().size()) +
          ", \"roles\": {";
  bool first = true;
  for (const auto& [role, count] : roles) {
    if (!first) body += ", ";
    first = false;
    body += "\"" + json_escape(role) + "\": " + std::to_string(count);
  }
  body += "}},\n";
  body += "  \"http\": {\"accepted\": " + std::to_string(stats.accepted) +
          ", \"requests\": " + std::to_string(stats.requests) +
          ", \"shed\": " + std::to_string(stats.shed) +
          ", \"idle_closed\": " + std::to_string(stats.idle_closed) +
          ", \"active_connections\": " + std::to_string(stats.active) + "}\n";
  body += "}\n";

  HttpResponse resp;
  resp.content_type = kContentTypeJson;
  resp.body = std::move(body);
  return resp;
}

HttpResponse ObsServer::selfscrape_dump() const {
  HttpResponse resp;
  if (store_ == nullptr) {
    resp.code = 404;
    resp.body = "no store attached (self-scrape not running)\n";
    return resp;
  }
  const std::vector<std::string> paths =
      store_->match(opts_.store_prefix + "*");
  constexpr std::size_t kMaxListed = 10000;
  std::string body = "{\n  \"series_count\": " +
                     std::to_string(paths.size()) + ",\n  \"series\": [\n";
  const std::size_t listed = std::min(paths.size(), kMaxListed);
  for (std::size_t i = 0; i < listed; ++i) {
    const std::string& path = paths[i];
    body += "    {\"path\": \"" + json_escape(path) + "\", \"samples\": " +
            std::to_string(store_->sample_count(path));
    const telemetry::SeriesSlice slice = store_->query_all(path);
    if (!slice.empty()) {
      body += ", \"last_time\": " + std::to_string(slice.times.back()) +
              ", \"last_value\": " + format_double(slice.values.back());
    }
    body += i + 1 < listed ? "},\n" : "}\n";
  }
  body += "  ]\n}\n";
  resp.content_type = kContentTypeJson;
  resp.body = std::move(body);
  return resp;
}

}  // namespace oda::net
