// HTTP/1.1 message types and an incremental request parser for the
// observability plane (net/server.hpp). The parser owns its receive buffer
// and is fed raw bytes as they arrive; it exposes exactly one completed
// request at a time and retains pipelined leftovers for the next round, so
// a connection state machine never re-buffers. The parser itself has no OS
// dependencies and is always compiled (even under ODA_NET=OFF) — only the
// reactor/server around it are gated.
//
// Scope: the observability plane is GET-only, so bodies are bounded by
// Limits::max_body_bytes (default 0 — any payload draws 413) and chunked
// transfer coding is refused with 501 rather than implemented.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace oda::net {

/// One parsed request. Header names are lower-cased at parse time; values
/// keep their case with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;  ///< e.g. "GET" (upper-case tokens only)
  std::string target;  ///< raw request-target, e.g. "/profile?seconds=2"
  std::string path;    ///< target up to the first '?'
  std::string query;   ///< after the first '?', "" when absent
  int version_minor = 1;  ///< HTTP/1.<minor>; only 0 and 1 are accepted
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  ///< resolved from version + Connection header

  /// First header value for `name` (must be lower-case), nullptr if absent.
  const std::string* header(const std::string& name) const;
  /// Value of `key` in the query string ("" when absent or valueless).
  std::string query_param(const std::string& key) const;
};

struct HttpResponse {
  int code = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra headers appended verbatim (name, value); Content-Type,
  /// Content-Length and Connection are emitted by serialize_response.
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Canonical reason phrase for a status code ("Unknown" for others).
const char* reason_phrase(int code);

/// Renders a full HTTP/1.1 response with Content-Length framing and an
/// explicit Connection header matching `keep_alive`.
std::string serialize_response(const HttpResponse& resp, bool keep_alive);

enum class ParseStatus {
  kNeedMore,  ///< incomplete — feed more bytes
  kComplete,  ///< request() is valid until next()
  kError,     ///< protocol error — error_code()/error_reason() are set
};

/// Incremental request parser. feed() appends bytes and advances; after
/// kComplete the caller services request() and then calls next(), which
/// drops the consumed bytes and re-parses any pipelined remainder. A
/// kError status is terminal for the connection (the server responds with
/// error_code() and closes).
class HttpParser {
 public:
  struct Limits {
    /// Cap on the request line + headers (431 beyond it).
    std::size_t max_header_bytes = 8 * 1024;
    /// Cap on declared Content-Length (413 beyond it). The observability
    /// endpoints take no payloads, so the default refuses any body.
    std::size_t max_body_bytes = 0;
  };

  HttpParser() = default;
  explicit HttpParser(Limits limits) : limits_(limits) {}

  /// Appends bytes and attempts to complete one request. Bytes arriving
  /// while a completed request is still unserviced are buffered untouched.
  ParseStatus feed(const char* data, std::size_t n);
  ParseStatus status() const { return status_; }

  /// Valid only while status() == kComplete, and only until next().
  const HttpRequest& request() const { return req_; }
  /// 400 / 413 / 431 / 501 / 505 once status() == kError.
  int error_code() const { return error_code_; }
  const std::string& error_reason() const { return error_reason_; }

  /// Releases the completed request and re-parses the pipelined remainder
  /// (may return kComplete immediately again).
  ParseStatus next();

  /// Bytes currently buffered (pipelined remainder included).
  std::size_t buffered() const { return buf_.size(); }

 private:
  ParseStatus parse();
  ParseStatus fail(int code, std::string reason);

  Limits limits_;
  std::string buf_;
  std::size_t consumed_ = 0;  ///< bytes of buf_ forming the completed request
  HttpRequest req_;
  ParseStatus status_ = ParseStatus::kNeedMore;
  int error_code_ = 0;
  std::string error_reason_;
};

}  // namespace oda::net
