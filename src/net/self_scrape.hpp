// Self-scrape: the paper's framework applied reflexively. A SelfScrape
// walks MetricsRegistry::global() and ingests every oda_* series into a
// TimeSeriesStore under `prefix` (default "oda/"), through the same
// interned-id insert_batch path facility telemetry takes — so ODA's own
// operational history is queryable through its own analytics (and listed
// live by ObsServer's /selfscrape endpoint).
//
// Series naming: "<prefix><family>" for an unlabeled series,
// "<prefix><family>{k=v,...}" with registration-sorted labels otherwise;
// histograms ingest their _sum and _count series. scrape_once(now) is the
// deterministic entry point (self_monitor calls it on simulation time);
// start(clock) spawns a periodic background thread for wall-clock use.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "net/reactor.hpp"
#include "obs/metrics.hpp"
#include "telemetry/series_id.hpp"

namespace oda::telemetry {
class TimeSeriesStore;
}  // namespace oda::telemetry

namespace oda::net {

struct SelfScrapeOptions {
  std::string prefix = "oda/";
  double period_s = 1.0;  ///< background-thread cadence for start()
};

class SelfScrape {
 public:
  explicit SelfScrape(telemetry::TimeSeriesStore& store,
                      SelfScrapeOptions opts = {});
  ~SelfScrape();
  SelfScrape(const SelfScrape&) = delete;
  SelfScrape& operator=(const SelfScrape&) = delete;

  /// One scrape pass: snapshot the registry, ingest everything at time
  /// `now`. Returns the number of samples ingested (0 under ODA_NET=OFF).
  std::size_t scrape_once(TimePoint now);

  /// Spawns the periodic background scraper ("net.self_scrape"); `clock`
  /// supplies the ingest timestamp per pass. False when the net plane is
  /// compiled out or the scraper is already running.
  bool start(std::function<TimePoint()> clock);
  void stop();

  std::uint64_t passes() const noexcept {
    // relaxed: statistics counter.
    return passes_.load(std::memory_order_relaxed);
  }
  std::uint64_t samples_ingested() const noexcept {
    // relaxed: statistics counter.
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void run(std::function<TimePoint()> clock);

  telemetry::TimeSeriesStore& store_;
  SelfScrapeOptions opts_;

  obs::Counter& passes_counter_;
  obs::Counter& samples_counter_;
  obs::Gauge& series_gauge_;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> samples_{0};
};

}  // namespace oda::net
