// Asynchronous HTTP/1.1 server on net/reactor.hpp: one listening socket
// and per-connection state machines (incremental HttpParser, bounded
// buffers, keep-alive + pipelining) driven entirely on the reactor's loop
// thread — connection state needs no locks. Overload is handled by policy,
// not collapse: beyond max_connections new sockets are shed with 503 +
// Connection: close, idle connections (slow-loris included) are evicted
// after idle_timeout_s, and stop() quiesces gracefully — stop accepting,
// drain in-flight responses (bounded by drain_timeout_s), then join.
//
// The server instruments itself into MetricsRegistry::global():
//   oda_http_requests_total{path,code}   (path via the normalizer below)
//   oda_http_request_seconds             (histogram, trace exemplars)
//   oda_http_connections_active / oda_http_connections_total
//   oda_http_shed_total / oda_http_idle_closed_total
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/sync.hpp"
#include "net/http.hpp"
#include "net/reactor.hpp"
#include "obs/metrics.hpp"

namespace oda::net {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see HttpServer::port()
  std::size_t max_connections = 64;
  std::size_t max_header_bytes = 8 * 1024;
  std::size_t max_body_bytes = 0;
  double idle_timeout_s = 30.0;
  /// stop() waits at most this long for in-flight responses to flush.
  double drain_timeout_s = 5.0;
};

class HttpServer;

/// Completion token for one request. Handlers either call send() inline
/// (the common case) or copy the Responder into a worker and send later —
/// send() is safe from any thread and is a no-op if the connection has
/// meanwhile closed. Exactly one send() per request; extras are ignored.
class Responder {
 public:
  void send(HttpResponse resp) const;

 private:
  friend class HttpServer;
  Responder(HttpServer* server, std::uint64_t conn_id)
      : server_(server), conn_id_(conn_id) {}
  HttpServer* server_ = nullptr;
  std::uint64_t conn_id_ = 0;
};

class HttpServer {
 public:
  /// The request reference is valid only for the duration of the call;
  /// deferred handlers copy what they need before returning.
  using Handler = std::function<void(const HttpRequest&, const Responder&)>;
  /// Maps a request to the `path` label of oda_http_requests_total. Routers
  /// install one that collapses unknown paths to "other" so an attacker
  /// cannot mint unbounded label cardinality.
  using PathNormalizer = std::function<std::string(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions opts = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void set_handler(Handler handler);             ///< before start()
  void set_path_normalizer(PathNormalizer fn);   ///< before start()

  /// Binds, listens, and spawns the reactor thread. False when the net
  /// plane is compiled out or the socket setup failed.
  bool start();
  /// Graceful quiesce: stop accepting, drain in-flight responses (bounded
  /// by drain_timeout_s), then join the reactor. Idempotent.
  void stop();
  bool running() const noexcept {
    // relaxed: liveness flag, no data published through it.
    return running_.load(std::memory_order_relaxed);
  }
  /// Bound port (the ephemeral choice when options.port == 0). Valid after
  /// a successful start().
  std::uint16_t port() const noexcept { return port_; }

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t requests = 0;
    std::uint64_t shed = 0;
    std::uint64_t idle_closed = 0;
    std::size_t active = 0;
  };
  Stats stats() const noexcept;

 private:
  friend class Responder;
  struct Conn;

  // All on the reactor loop thread:
  void on_accept();
  void on_conn_event(std::uint64_t id, std::uint32_t events);
  void service(std::uint64_t id);
  void begin_request(Conn* conn);
  void complete_request(std::uint64_t id, HttpResponse resp);
  void queue_error_response(Conn* conn);
  bool flush_out(Conn* conn);  ///< false = connection was closed
  int fill_from_socket(Conn* conn);
  void close_conn(Conn* conn);
  void shed_connection(int fd);
  void sweep_idle();
  void begin_drain();
  void force_close_all();
  void count_request(const std::string& path_label, int code);

  // Any thread:
  void respond(std::uint64_t id, HttpResponse resp);
  void signal_drained() ODA_EXCLUDES(drain_mu_);

  HttpServerOptions opts_;
  Reactor reactor_;
  Handler handler_;
  PathNormalizer normalizer_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};

  // Loop-thread-confined connection table.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  bool draining_ = false;  // loop thread only

  /// Leaf lock (unranked): only the stop() handshake below; never nests.
  mutable Mutex drain_mu_;
  CondVar drain_cv_;
  bool drained_ ODA_GUARDED_BY(drain_mu_) = false;

  std::atomic<std::uint64_t> accepted_total_{0};
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> shed_total_{0};
  std::atomic<std::uint64_t> idle_closed_total_{0};
  std::atomic<std::size_t> active_conns_{0};

  obs::Histogram& request_seconds_;
  obs::Gauge& connections_active_gauge_;
  obs::Counter& connections_counter_;
  obs::Counter& shed_counter_;
  obs::Counter& idle_closed_counter_;
};

}  // namespace oda::net
