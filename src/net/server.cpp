#include "net/server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/trace.hpp"

#if ODA_NET_ENABLED
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/log.hpp"
#endif

namespace oda::net {

namespace {

constexpr const char* kRequestsHelp =
    "Observability HTTP requests by normalized path and status code";

#if ODA_NET_ENABLED
double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif  // ODA_NET_ENABLED

}  // namespace

/// Per-connection state machine. Confined to the reactor loop thread: the
/// only cross-thread reference is the Responder's conn id, resolved back
/// to a Conn under loop-thread context in complete_request().
struct HttpServer::Conn {
  explicit Conn(HttpParser::Limits limits) : parser(limits) {}

  std::uint64_t id = 0;
  int fd = -1;
  HttpParser parser;
  std::string out;           ///< serialized responses awaiting the socket
  std::size_t out_off = 0;   ///< bytes of `out` already written
  bool handling = false;     ///< a dispatched request awaits its response
  bool close_after_write = false;
  bool peer_closed = false;
  bool req_keep_alive = false;
  double last_activity_s = 0.0;
  std::uint64_t request_start_us = 0;
  std::string active_path;   ///< normalized metrics label for the request
};

HttpServer::HttpServer(HttpServerOptions opts)
    : opts_(std::move(opts)),
      request_seconds_(obs::MetricsRegistry::global().histogram(
          "oda_http_request_seconds",
          "Observability HTTP request latency, dispatch to response-queued")),
      connections_active_gauge_(obs::MetricsRegistry::global().gauge(
          "oda_http_connections_active",
          "Open observability HTTP connections")),
      connections_counter_(obs::MetricsRegistry::global().counter(
          "oda_http_connections_total",
          "Accepted observability HTTP connections")),
      shed_counter_(obs::MetricsRegistry::global().counter(
          "oda_http_shed_total",
          "Connections shed with 503 at the max_connections cap")),
      idle_closed_counter_(obs::MetricsRegistry::global().counter(
          "oda_http_idle_closed_total",
          "Connections evicted by the idle timeout")) {
  // Eager zero series so the family exports before the first request.
  obs::MetricsRegistry::global().counter(
      "oda_http_requests_total", kRequestsHelp,
      {{"path", "other"}, {"code", "200"}});
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::set_handler(Handler handler) { handler_ = std::move(handler); }

void HttpServer::set_path_normalizer(PathNormalizer fn) {
  normalizer_ = std::move(fn);
}

HttpServer::Stats HttpServer::stats() const noexcept {
  // relaxed (all): independent statistics counters.
  Stats s;
  s.accepted = accepted_total_.load(std::memory_order_relaxed);
  s.requests = requests_total_.load(std::memory_order_relaxed);
  s.shed = shed_total_.load(std::memory_order_relaxed);
  s.idle_closed = idle_closed_total_.load(std::memory_order_relaxed);
  s.active = active_conns_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::count_request(const std::string& path_label, int code) {
  obs::MetricsRegistry::global()
      .counter("oda_http_requests_total", kRequestsHelp,
               {{"path", path_label}, {"code", std::to_string(code)}})
      .inc();
}

void Responder::send(HttpResponse resp) const {
  if (server_ != nullptr) server_->respond(conn_id_, std::move(resp));
}

void HttpServer::respond(std::uint64_t id, HttpResponse resp) {
  if (reactor_.on_loop_thread()) {
    // Inline handler path: the surrounding service() loop resumes pumping
    // (pipelined requests, flush) when the handler returns.
    complete_request(id, std::move(resp));
    return;
  }
  // Deferred path (e.g. /profile worker): marshal onto the loop thread.
  reactor_.post([this, id, r = std::move(resp)]() mutable {
    complete_request(id, std::move(r));
    service(id);
  });
}

void HttpServer::signal_drained() {
  MutexLock lock(drain_mu_);
  drained_ = true;
  drain_cv_.notify_all();
}

#if ODA_NET_ENABLED

bool HttpServer::start() {
  if (running_.load(std::memory_order_relaxed)) return false;
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    ODA_LOG_ERROR << "net: socket: " << std::strerror(errno);
    return false;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ODA_LOG_ERROR << "net: bad bind address " << opts_.bind_address;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    ODA_LOG_ERROR << "net: bind/listen on " << opts_.bind_address << ":"
                  << opts_.port << ": " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  draining_ = false;
  {
    MutexLock lock(drain_mu_);
    drained_ = false;
  }
  // Pre-start registrations run before the loop thread exists, which
  // satisfies the reactor's loop-thread-only contract.
  if (!reactor_.add_fd(listen_fd_, kEventRead,
                       [this](std::uint32_t) { on_accept(); })) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  const double sweep_s = std::clamp(opts_.idle_timeout_s / 4.0, 0.05, 1.0);
  reactor_.schedule(sweep_s, [this] { sweep_idle(); });
  if (!reactor_.start("net.reactor")) {
    reactor_.del_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_.store(true, std::memory_order_relaxed);
  return true;
}

void HttpServer::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  reactor_.post([this] { begin_drain(); });
  {
    // Bounded in practice: begin_drain() either signals immediately or
    // arms the drain_timeout_s force-close timer, which always signals.
    MutexLock lock(drain_mu_);
    while (!drained_) drain_cv_.wait(drain_mu_);
  }
  reactor_.stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Normally empty by now; safety net for the force-close path.
  for (auto& [id, conn] : conns_) ::close(conn->fd);
  conns_.clear();
  active_conns_.store(0, std::memory_order_relaxed);
  running_.store(false, std::memory_order_relaxed);
}

void HttpServer::on_accept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        ODA_LOG_WARN << "net: accept: " << std::strerror(errno);
      }
      return;
    }
    if (draining_) {
      ::close(fd);
      continue;
    }
    if (conns_.size() >= opts_.max_connections) {
      shed_connection(fd);
      continue;
    }
    accepted_total_.fetch_add(1, std::memory_order_relaxed);
    connections_counter_.inc();
    auto conn = std::make_unique<Conn>(
        HttpParser::Limits{opts_.max_header_bytes, opts_.max_body_bytes});
    Conn* c = conn.get();
    c->id = next_conn_id_++;
    c->fd = fd;
    c->last_activity_s = steady_now_s();
    const std::uint64_t id = c->id;
    conns_.emplace(id, std::move(conn));
    active_conns_.store(conns_.size(), std::memory_order_relaxed);
    connections_active_gauge_.add(1.0);
    if (!reactor_.add_fd(fd, kEventRead | kEventWrite,
                         [this, id](std::uint32_t ev) {
                           on_conn_event(id, ev);
                         })) {
      close_conn(c);
      continue;
    }
    // Edge-triggered: the socket may already hold a full request.
    service(id);
  }
}

void HttpServer::shed_connection(int fd) {
  shed_total_.fetch_add(1, std::memory_order_relaxed);
  shed_counter_.inc();
  HttpResponse resp;
  resp.code = 503;
  resp.body = "connection limit reached, retry later\n";
  const std::string wire = serialize_response(resp, /*keep_alive=*/false);
  // Best-effort single write: the response fits any socket buffer, and a
  // shed connection is not worth a state machine.
  const ssize_t rc = ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
  (void)rc;
  ::close(fd);
}

void HttpServer::on_conn_event(std::uint64_t id, std::uint32_t events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn* c = it->second.get();
  if (events & kEventError) {
    close_conn(c);
    return;
  }
  c->last_activity_s = steady_now_s();
  service(id);
}

void HttpServer::service(std::uint64_t id) {
  for (;;) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    Conn* c = it->second.get();
    if (c->handling) return;       // awaiting a deferred response
    if (!flush_out(c)) return;     // write error closed the connection
    if (c->out_off < c->out.size()) return;  // kernel send buffer full
    if (c->close_after_write) {
      close_conn(c);
      return;
    }
    const ParseStatus st = c->parser.status();
    if (st == ParseStatus::kComplete) {
      begin_request(c);
      continue;  // inline handlers finish here; pump pipelined requests
    }
    if (st == ParseStatus::kError) {
      queue_error_response(c);
      continue;  // flush, then close_after_write tears it down
    }
    const int got = fill_from_socket(c);
    if (got < 0) return;  // read error closed the connection
    if (got == 0) {
      if (c->peer_closed) close_conn(c);
      return;  // EAGAIN — wait for the next readable edge
    }
  }
}

bool HttpServer::flush_out(Conn* c) {
  while (c->out_off < c->out.size()) {
    const ssize_t n = ::send(c->fd, c->out.data() + c->out_off,
                             c->out.size() - c->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c->out_off += static_cast<std::size_t>(n);
      c->last_activity_s = steady_now_s();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    close_conn(c);
    return false;
  }
  if (!c->out.empty()) {
    c->out.clear();
    c->out_off = 0;
  }
  return true;
}

int HttpServer::fill_from_socket(Conn* c) {
  bool progress = false;
  char buf[4096];
  while (c->parser.status() == ParseStatus::kNeedMore) {
    const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c->last_activity_s = steady_now_s();
      c->parser.feed(buf, static_cast<std::size_t>(n));
      progress = true;
      continue;
    }
    if (n == 0) {
      c->peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(c);
    return -1;
  }
  return progress ? 1 : 0;
}

void HttpServer::begin_request(Conn* c) {
  c->handling = true;
  c->request_start_us = steady_now_us();
  const HttpRequest& req = c->parser.request();
  c->req_keep_alive = req.keep_alive;
  c->active_path = normalizer_ ? normalizer_(req) : req.path;
  const std::uint64_t id = c->id;
  // The span covers handler + inline completion, so the latency histogram
  // observe in complete_request() runs under an active trace context and
  // the exported exemplar links back to this request's trace.
  ODA_TRACE_SPAN_CAT("http.request", "net");
  if (!handler_) {
    HttpResponse resp;
    resp.code = 404;
    resp.body = "no handler installed\n";
    complete_request(id, std::move(resp));
    return;
  }
  handler_(req, Responder(this, id));
}

void HttpServer::complete_request(std::uint64_t id, HttpResponse resp) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;  // connection closed while handling
  Conn* c = it->second.get();
  if (!c->handling) return;  // duplicate send for this request
  const double latency_s =
      static_cast<double>(steady_now_us() - c->request_start_us) / 1e6;
  request_seconds_.observe(latency_s);
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  count_request(c->active_path, resp.code);
  const bool keep = c->req_keep_alive && !draining_;
  c->out += serialize_response(resp, keep);
  if (!keep) c->close_after_write = true;
  c->handling = false;
  c->parser.next();
  c->last_activity_s = steady_now_s();
}

void HttpServer::queue_error_response(Conn* c) {
  HttpResponse resp;
  resp.code = c->parser.error_code();
  resp.body = c->parser.error_reason() + "\n";
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  count_request("error", resp.code);
  c->out += serialize_response(resp, /*keep_alive=*/false);
  c->close_after_write = true;
}

void HttpServer::close_conn(Conn* c) {
  reactor_.del_fd(c->fd);
  ::close(c->fd);
  conns_.erase(c->id);  // destroys *c
  active_conns_.store(conns_.size(), std::memory_order_relaxed);
  connections_active_gauge_.add(-1.0);
  if (draining_ && conns_.empty()) signal_drained();
}

void HttpServer::sweep_idle() {
  const double now = steady_now_s();
  std::vector<std::uint64_t> evict;
  for (const auto& [id, conn] : conns_) {
    if (!conn->handling &&
        now - conn->last_activity_s > opts_.idle_timeout_s) {
      evict.push_back(id);
    }
  }
  for (const std::uint64_t id : evict) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    idle_closed_total_.fetch_add(1, std::memory_order_relaxed);
    idle_closed_counter_.inc();
    close_conn(it->second.get());
  }
  if (!draining_) {
    const double sweep_s = std::clamp(opts_.idle_timeout_s / 4.0, 0.05, 1.0);
    reactor_.schedule(sweep_s, [this] { sweep_idle(); });
  }
}

void HttpServer::begin_drain() {
  draining_ = true;
  if (listen_fd_ >= 0) {
    reactor_.del_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::uint64_t> idle;
  std::vector<std::uint64_t> busy;
  for (const auto& [id, conn] : conns_) {
    // A parsed-but-undispatched request still gets serviced; only truly
    // quiet connections close immediately.
    if (!conn->handling && conn->out_off >= conn->out.size() &&
        conn->parser.status() == ParseStatus::kNeedMore) {
      idle.push_back(id);
    } else {
      conn->close_after_write = true;
      busy.push_back(id);
    }
  }
  for (const std::uint64_t id : idle) {
    auto it = conns_.find(id);
    if (it != conns_.end()) close_conn(it->second.get());
  }
  for (const std::uint64_t id : busy) service(id);
  if (conns_.empty()) {
    signal_drained();
    return;
  }
  reactor_.schedule(opts_.drain_timeout_s, [this] { force_close_all(); });
}

void HttpServer::force_close_all() {
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it != conns_.end()) close_conn(it->second.get());
  }
  if (draining_ && conns_.empty()) signal_drained();
}

#else  // !ODA_NET_ENABLED — inert stubs: no sockets, no threads.

bool HttpServer::start() { return false; }
void HttpServer::stop() {}
void HttpServer::on_accept() {}
void HttpServer::on_conn_event(std::uint64_t, std::uint32_t) {}
void HttpServer::service(std::uint64_t) {}
void HttpServer::begin_request(Conn*) {}
void HttpServer::complete_request(std::uint64_t, HttpResponse) {}
void HttpServer::queue_error_response(Conn*) {}
bool HttpServer::flush_out(Conn*) { return false; }
int HttpServer::fill_from_socket(Conn*) { return 0; }
void HttpServer::close_conn(Conn*) {}
void HttpServer::shed_connection(int) {}
void HttpServer::sweep_idle() {}
void HttpServer::begin_drain() {}
void HttpServer::force_close_all() {}

#endif  // ODA_NET_ENABLED

}  // namespace oda::net
