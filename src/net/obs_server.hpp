// The live introspection plane: an HttpServer wired to the existing
// observability exporters, so everything self_monitor writes to files is
// also scrapeable from the running process (docs/OBSERVABILITY.md "Live
// introspection" has the endpoint table):
//
//   GET /metrics          Prometheus text exposition (with exemplars)
//   GET /metrics.json     JSON metrics snapshot
//   GET /healthz          200/503 + rendered assess_pipeline_health report
//   GET /trace            Chrome trace JSON (?clear=1 drains the tracer)
//   GET /profile?seconds= sampling-profiler run -> folded stacks (deferred)
//   GET /flight           FlightRecorder snapshot (Chrome trace JSON)
//   GET /varz             build flags, uptime, thread registry, http stats
//   GET /selfscrape       self-scraped oda/* series in the attached store
//
// Unknown paths collapse to the "other" label of oda_http_requests_total
// so scanners cannot mint label cardinality.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "common/sync.hpp"
#include "net/server.hpp"

namespace oda::telemetry {
class TimeSeriesStore;
}  // namespace oda::telemetry

namespace oda::net {

struct ObsServerOptions {
  HttpServerOptions http;
  /// Upper clamp on /profile?seconds=N (also bounds stop() latency, which
  /// joins an in-flight profile worker).
  double max_profile_seconds = 30.0;
  /// Series-path prefix listed by /selfscrape (SelfScrape's prefix).
  std::string store_prefix = "oda/";
};

class ObsServer {
 public:
  explicit ObsServer(ObsServerOptions opts = {});
  ~ObsServer();
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Store queried by /selfscrape (usually the one SelfScrape feeds).
  /// Must outlive the server; call before start().
  void set_store(const telemetry::TimeSeriesStore* store);

  bool start();
  /// Joins any in-flight /profile worker, then quiesces the HttpServer.
  void stop();
  bool running() const noexcept { return http_.running(); }
  std::uint16_t port() const noexcept { return http_.port(); }

 private:
  void handle(const HttpRequest& req, const Responder& responder);
  HttpResponse route(const HttpRequest& req);
  bool handle_profile(const HttpRequest& req, const Responder& responder);
  HttpResponse varz() const;
  HttpResponse selfscrape_dump() const;
  void join_profile_worker() ODA_EXCLUDES(profile_mu_);

  ObsServerOptions opts_;
  HttpServer http_;
  const telemetry::TimeSeriesStore* store_ = nullptr;
  std::chrono::steady_clock::time_point start_time_{};

  /// Leaf lock (unranked): guards only the worker thread handle.
  Mutex profile_mu_;
  std::thread profile_worker_ ODA_GUARDED_BY(profile_mu_);
  /// One profile run at a time (the SamplingProfiler is process-global).
  std::atomic<bool> profile_busy_{false};
};

}  // namespace oda::net
