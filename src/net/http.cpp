#include "net/http.hpp"

#include <algorithm>
#include <cctype>

namespace oda::net {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

/// True when `value` (a Connection header) contains `token` as a
/// comma-separated element, case-insensitively.
bool has_token(const std::string& value, const std::string& token) {
  const std::string lowered = to_lower(value);
  std::size_t pos = 0;
  while (pos < lowered.size()) {
    std::size_t comma = lowered.find(',', pos);
    if (comma == std::string::npos) comma = lowered.size();
    if (trim(lowered.substr(pos, comma - pos)) == token) return true;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string HttpRequest::query_param(const std::string& key) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (pair == key) return "";
    } else if (pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return "";
}

const char* reason_phrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& resp, bool keep_alive) {
  std::string out;
  out.reserve(resp.body.size() + 160);
  out += "HTTP/1.1 ";
  out += std::to_string(resp.code);
  out += ' ';
  out += reason_phrase(resp.code);
  out += "\r\nContent-Type: ";
  out += resp.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(resp.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [name, value] : resp.extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += resp.body;
  return out;
}

ParseStatus HttpParser::feed(const char* data, std::size_t n) {
  if (status_ == ParseStatus::kError) return status_;
  buf_.append(data, n);
  // A completed-but-unserviced request keeps pipelined bytes buffered; the
  // server stops reading in that state, so buffering stays bounded.
  if (status_ == ParseStatus::kComplete) return status_;
  return parse();
}

ParseStatus HttpParser::next() {
  if (status_ != ParseStatus::kComplete) return status_;
  buf_.erase(0, consumed_);
  consumed_ = 0;
  req_ = HttpRequest{};
  status_ = ParseStatus::kNeedMore;
  if (!buf_.empty()) return parse();
  return status_;
}

ParseStatus HttpParser::fail(int code, std::string reason) {
  status_ = ParseStatus::kError;
  error_code_ = code;
  error_reason_ = std::move(reason);
  return status_;
}

ParseStatus HttpParser::parse() {
  // Find the end of the header block: CRLFCRLF, tolerating bare-LF line
  // endings (robustness principle; every real client sends CRLF).
  std::size_t header_len = std::string::npos;  // bytes before the terminator
  std::size_t header_end = std::string::npos;  // first body byte
  const std::size_t crlf = buf_.find("\r\n\r\n");
  const std::size_t lf = buf_.find("\n\n");
  if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
    header_len = crlf;
    header_end = crlf + 4;
  } else if (lf != std::string::npos) {
    header_len = lf;
    header_end = lf + 2;
  }
  if (header_len == std::string::npos) {
    if (buf_.size() > limits_.max_header_bytes) {
      return fail(431, "request headers exceed " +
                           std::to_string(limits_.max_header_bytes) +
                           " bytes");
    }
    return status_;  // kNeedMore
  }
  if (header_len > limits_.max_header_bytes) {
    return fail(431, "request headers exceed " +
                         std::to_string(limits_.max_header_bytes) + " bytes");
  }

  // Split the header block into lines (strip one trailing CR per line).
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < header_len) {
    std::size_t nl = buf_.find('\n', pos);
    if (nl == std::string::npos || nl > header_len) nl = header_len;
    std::size_t len = nl - pos;
    if (len > 0 && buf_[pos + len - 1] == '\r') --len;
    lines.push_back(buf_.substr(pos, len));
    pos = nl + 1;
  }
  if (lines.empty() || lines[0].empty()) {
    return fail(400, "empty request line");
  }

  // Request line: METHOD SP request-target SP HTTP/1.x
  const std::string& line = lines[0];
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return fail(400, "malformed request line");
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (req.method.empty() ||
      !std::all_of(req.method.begin(), req.method.end(),
                   [](unsigned char c) { return c >= 'A' && c <= 'Z'; })) {
    return fail(400, "malformed method token");
  }
  if (req.target.empty() || (req.target[0] != '/' && req.target != "*")) {
    return fail(400, "malformed request target");
  }
  if (version == "HTTP/1.1") {
    req.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    req.version_minor = 0;
  } else {
    return fail(505, "unsupported protocol version: " + version);
  }
  const std::size_t qmark = req.target.find('?');
  req.path = req.target.substr(0, qmark);
  req.query =
      qmark == std::string::npos ? "" : req.target.substr(qmark + 1);

  // Header fields.
  std::size_t content_length = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& field = lines[i];
    if (field.empty()) continue;
    if (field[0] == ' ' || field[0] == '\t') {
      return fail(400, "obsolete header line folding");
    }
    const std::size_t colon = field.find(':');
    if (colon == std::string::npos || colon == 0) {
      return fail(400, "malformed header field");
    }
    std::string name = field.substr(0, colon);
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      return fail(400, "whitespace in header field name");
    }
    req.headers.emplace_back(to_lower(std::move(name)),
                             trim(field.substr(colon + 1)));
  }
  if (req.header("transfer-encoding") != nullptr) {
    return fail(501, "transfer codings not supported");
  }
  if (const std::string* cl = req.header("content-length")) {
    if (cl->empty() || !std::all_of(cl->begin(), cl->end(), [](unsigned char c) {
          return c >= '0' && c <= '9';
        }) ||
        cl->size() > 10) {
      return fail(400, "malformed Content-Length");
    }
    content_length = static_cast<std::size_t>(std::stoull(*cl));
  }
  if (content_length > limits_.max_body_bytes) {
    return fail(413, "request body of " + std::to_string(content_length) +
                         " bytes not accepted");
  }
  if (buf_.size() < header_end + content_length) {
    return status_;  // kNeedMore — body still arriving
  }
  req.body = buf_.substr(header_end, content_length);

  // Connection persistence.
  req.keep_alive = req.version_minor >= 1;
  if (const std::string* conn = req.header("connection")) {
    if (has_token(*conn, "close")) {
      req.keep_alive = false;
    } else if (has_token(*conn, "keep-alive")) {
      req.keep_alive = true;
    }
  }

  req_ = std::move(req);
  consumed_ = header_end + content_length;
  status_ = ParseStatus::kComplete;
  return status_;
}

}  // namespace oda::net
