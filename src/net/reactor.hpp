// Non-blocking edge-triggered epoll reactor: one event-loop thread
// (registered with common/thread_watch.hpp as "net.reactor") multiplexing
// sockets, one-shot timers, and cross-thread posted tasks via an eventfd
// wakeup. All fd/timer state is confined to the loop thread — the only
// shared state is the posted-task queue, guarded by an oda::Mutex leaf
// lock — so handlers run lock-free and the analysis has nothing to prove
// about them.
//
// With ODA_NET=OFF the reactor compiles to inert stubs: the constructor
// opens nothing, start() returns false, and no thread is ever spawned —
// callers gate setup (and tests skip) on net_enabled(), mirroring the
// wal_enabled()/profiling gates.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"

// Defined PUBLIC on oda_net by CMake; default on so bare compiles of this
// header (lint self-contained check) see the full code path.
#ifndef ODA_NET_ENABLED
#define ODA_NET_ENABLED 1
#endif

namespace oda::net {

/// True when the network plane is compiled in (ODA_NET=ON). With the
/// option off, Reactor/HttpServer start() return false and callers skip.
bool net_enabled() noexcept;

// Event mask bits handed to io handlers (translated from epoll).
inline constexpr std::uint32_t kEventRead = 1u << 0;
inline constexpr std::uint32_t kEventWrite = 1u << 1;
inline constexpr std::uint32_t kEventError = 1u << 2;  ///< EPOLLERR/EPOLLHUP

class Reactor {
 public:
  using IoHandler = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawns the loop thread. Returns false when the net plane is compiled
  /// out, setup failed, or the reactor is already running.
  bool start(const char* role = "net.reactor");
  /// Requests shutdown and joins the loop thread. Pending posted tasks and
  /// timers are dropped; registered fds are deregistered but not closed
  /// (their owners close them).
  void stop();
  bool running() const noexcept {
    // relaxed: an independent liveness flag; no data is published by it.
    return running_.load(std::memory_order_relaxed);
  }
  bool on_loop_thread() const noexcept;

  // ----- loop-thread only (or before start()) -----

  /// Registers `fd` edge-triggered for the given kEvent* interest mask.
  bool add_fd(int fd, std::uint32_t events, IoHandler handler);
  /// Deregisters `fd` and drops its handler. Safe to call from inside the
  /// fd's own handler (dispatch invokes a copy).
  void del_fd(int fd);
  /// Runs `fn` on the loop thread after `delay_s` seconds (one-shot).
  /// Returns a timer id for cancel().
  std::uint64_t schedule(double delay_s, Task fn);
  void cancel(std::uint64_t timer_id);

  // ----- any thread -----

  /// Enqueues `fn` to run on the loop thread and wakes it. Tasks posted
  /// after stop() are silently dropped.
  void post(Task fn) ODA_EXCLUDES(post_mu_);

 private:
  struct Timer {
    std::uint64_t id = 0;
    double deadline_s = 0.0;
    Task fn;
  };

  void loop();
  void wake();
  int next_timeout_ms() const;
  void run_posted() ODA_EXCLUDES(post_mu_);
  void run_due_timers();
  static double now_s();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  const char* role_ = "net.reactor";
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::thread::id> loop_tid_{};

  // Loop-thread-confined (no lock by design; not visible off-loop).
  std::unordered_map<int, IoHandler> handlers_;
  std::vector<Timer> timers_;  // unsorted; scanned per tick (few timers)
  std::uint64_t next_timer_id_ = 1;

  /// Leaf lock (unranked): guards only the posted-task queue and never
  /// nests around another lock — tasks run after it is released.
  mutable Mutex post_mu_;
  std::vector<Task> posted_ ODA_GUARDED_BY(post_mu_);
};

}  // namespace oda::net
