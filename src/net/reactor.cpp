#include "net/reactor.hpp"

#if ODA_NET_ENABLED
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/log.hpp"
#include "common/thread_watch.hpp"
#endif

namespace oda::net {

bool net_enabled() noexcept { return ODA_NET_ENABLED != 0; }

#if ODA_NET_ENABLED

namespace {

std::uint32_t to_epoll(std::uint32_t events) {
  std::uint32_t mask = EPOLLET;
  if (events & kEventRead) mask |= EPOLLIN | EPOLLRDHUP;
  if (events & kEventWrite) mask |= EPOLLOUT;
  return mask;
}

std::uint32_t from_epoll(std::uint32_t mask) {
  std::uint32_t events = 0;
  // RDHUP surfaces as readable: the next read() returns 0 and the
  // connection winds down gracefully instead of being torn down mid-write.
  if (mask & (EPOLLIN | EPOLLPRI | EPOLLRDHUP)) events |= kEventRead;
  if (mask & EPOLLOUT) events |= kEventWrite;
  if (mask & (EPOLLERR | EPOLLHUP)) events |= kEventError;
  return events;
}

}  // namespace

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ODA_LOG_ERROR << "net: epoll_create1: " << std::strerror(errno);
    return;
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ODA_LOG_ERROR << "net: eventfd: " << std::strerror(errno);
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: drained every tick
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

Reactor::~Reactor() {
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool Reactor::start(const char* role) {
  if (epoll_fd_ < 0 || running_.load(std::memory_order_relaxed)) return false;
  role_ = role;
  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
  loop_tid_.store(thread_.get_id(), std::memory_order_relaxed);
  return true;
}

void Reactor::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  wake();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
  loop_tid_.store(std::thread::id{}, std::memory_order_relaxed);
  handlers_.clear();
  timers_.clear();
  {
    MutexLock lock(post_mu_);
    posted_.clear();
  }
}

bool Reactor::on_loop_thread() const noexcept {
  return std::this_thread::get_id() ==
         loop_tid_.load(std::memory_order_relaxed);
}

bool Reactor::add_fd(int fd, std::uint32_t events, IoHandler handler) {
  if (epoll_fd_ < 0) return false;
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ODA_LOG_ERROR << "net: epoll_ctl(ADD): " << std::strerror(errno);
    return false;
  }
  handlers_[fd] = std::move(handler);
  return true;
}

void Reactor::del_fd(int fd) {
  if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

std::uint64_t Reactor::schedule(double delay_s, Task fn) {
  const std::uint64_t id = next_timer_id_++;
  timers_.push_back(Timer{id, now_s() + delay_s, std::move(fn)});
  return id;
}

void Reactor::cancel(std::uint64_t timer_id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->id == timer_id) {
      timers_.erase(it);
      return;
    }
  }
}

void Reactor::post(Task fn) {
  {
    MutexLock lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void Reactor::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // EAGAIN (counter saturated) still leaves the fd readable — wakeup holds.
  const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
  (void)rc;
}

double Reactor::now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Reactor::next_timeout_ms() const {
  // Cap the sleep so a missed wakeup can only delay shutdown briefly.
  double timeout_s = 1.0;
  const double now = now_s();
  for (const Timer& t : timers_) {
    const double until = t.deadline_s - now;
    if (until < timeout_s) timeout_s = until;
  }
  if (timeout_s <= 0.0) return 0;
  return static_cast<int>(timeout_s * 1000.0) + 1;
}

void Reactor::run_posted() {
  std::vector<Task> batch;
  {
    MutexLock lock(post_mu_);
    batch.swap(posted_);
  }
  for (Task& task : batch) task();
}

void Reactor::run_due_timers() {
  const double now = now_s();
  // Collect-then-run: a timer callback may schedule()/cancel() freely.
  std::vector<Task> due;
  for (auto it = timers_.begin(); it != timers_.end();) {
    if (it->deadline_s <= now) {
      due.push_back(std::move(it->fn));
      it = timers_.erase(it);
    } else {
      ++it;
    }
  }
  for (Task& task : due) task();
}

void Reactor::loop() {
  WatchedThreadScope watch(role_);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                               next_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      ODA_LOG_ERROR << "net: epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == wake_fd_) {
        std::uint64_t drain = 0;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
      }
    }
    run_posted();
    run_due_timers();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) continue;
      // Re-check per dispatch (an earlier handler may have removed this
      // fd) and invoke a copy (the handler may remove itself).
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      IoHandler handler = it->second;
      handler(from_epoll(events[i].events));
    }
    // Tasks posted while dispatching io run next tick (the wake eventfd is
    // already signalled), except on the shutdown path below.
  }
  run_posted();
}

#else  // !ODA_NET_ENABLED — inert stubs: no fds, no thread, no epoll.

Reactor::Reactor() = default;
Reactor::~Reactor() = default;
bool Reactor::start(const char*) { return false; }
void Reactor::stop() {}
bool Reactor::on_loop_thread() const noexcept { return false; }
bool Reactor::add_fd(int, std::uint32_t, IoHandler) { return false; }
void Reactor::del_fd(int) {}
std::uint64_t Reactor::schedule(double, Task) { return 0; }
void Reactor::cancel(std::uint64_t) {}
void Reactor::post(Task) {}
void Reactor::wake() {}
int Reactor::next_timeout_ms() const { return 0; }
void Reactor::run_posted() {}
void Reactor::run_due_timers() {}
double Reactor::now_s() { return 0.0; }
void Reactor::loop() {}

#endif  // ODA_NET_ENABLED

}  // namespace oda::net
