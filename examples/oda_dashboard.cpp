// The operator's daily report: every descriptive view this library renders
// (facility, system, scheduler, jobs, alerts) from one simulated day, plus
// the SIE system-state indicator — the "visualization-oriented scenario"
// that the paper's survey [13] found most HPC centers use ODA for.
//
//   ./oda_dashboard [hours=24]
#include <cstdio>
#include <cstdlib>

#include "analytics/descriptive/aggregation.hpp"
#include "analytics/descriptive/dashboard.hpp"
#include "analytics/descriptive/kpi.hpp"
#include "sim/cluster.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/collector.hpp"

int main(int argc, char** argv) {
  using namespace oda;
  const Duration hours = argc > 1 ? std::atoll(argv[1]) : 24;

  sim::ClusterParams params;
  params.seed = 2024;
  params.workload.peak_arrival_rate_per_hour = 55.0;
  params.workload.max_duration = 4 * kHour;
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store(1 << 16);
  telemetry::MessageBus bus;
  telemetry::Collector collector(cluster, &store, &bus);
  collector.add_all_sensors(60);

  // Threshold alerting wired onto the bus (descriptive-row automation).
  telemetry::AlertEngine alerts;
  {
    telemetry::AlertRule hot;
    hot.name = "cpu-hot";
    hot.sensor_pattern = "rack*/node*/cpu_temp";
    hot.threshold = 85.0;
    hot.hold = 5 * kMinute;
    hot.hysteresis = 3.0;
    hot.severity = telemetry::AlertSeverity::kCritical;
    alerts.add_rule(hot);
    telemetry::AlertRule queue;
    queue.name = "queue-deep";
    queue.sensor_pattern = "scheduler/queue_length";
    queue.threshold = 20.0;
    queue.hold = 30 * kMinute;
    queue.severity = telemetry::AlertSeverity::kWarning;
    alerts.add_rule(queue);
    alerts.attach(bus);
  }

  while (cluster.now() < hours * kHour) {
    cluster.step();
    collector.collect();
  }
  const TimePoint now = cluster.now();

  std::printf("%s\n", analytics::facility_dashboard(store, 0, now).c_str());
  std::printf("%s\n", analytics::system_dashboard(store, 0, now).c_str());
  std::printf("%s\n",
              analytics::scheduler_dashboard(
                  store, cluster.scheduler().completed(), 0, now)
                  .c_str());
  std::printf("%s\n",
              analytics::job_dashboard(cluster.scheduler().completed(), 12).c_str());
  std::printf("%s\n", analytics::alert_dashboard(alerts).c_str());

  const auto sie = analytics::compute_sie(
      store, {"cluster/it_power", "scheduler/running_jobs"}, 0, now,
      15 * kMinute);
  const auto itue = analytics::compute_itue(store, 0, now);
  std::printf("state indicators: SIE=%.2f bits (%zu states)  ITUE=%.3f  "
              "TUE=%.3f\n",
              sie.entropy_bits, sie.distinct_states, itue.itue, itue.tue);
  std::printf("alerts fired today: %zu (%zu still active)\n",
              alerts.history().size(), alerts.active_count());
  return 0;
}
