// The PowerStack-style composition from the paper's Sec. V-B / Figure 3
// (Wu et al. [41]): *multi-pillar* power management — a facility-level power
// cap enforced through system-hardware DVFS, with a predictive (plan-based)
// variant that pre-sheds frequency on a facility-power forecast, plus
// energy-mode DVFS for memory-bound phases. Prints a cap-compliance
// comparison: uncapped vs reactive cap vs plan-based cap.
//
//   ./powerstack [cap_fraction=0.85]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "analytics/descriptive/kpi.hpp"
#include "analytics/prescriptive/controller.hpp"
#include "analytics/prescriptive/dvfs.hpp"
#include "analytics/prescriptive/powercap.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

namespace {

using namespace oda;

struct Outcome {
  double over_cap_minutes = 0.0;
  double worst_overshoot_w = 0.0;
  double it_kwh = 0.0;
  double work_done_kh = 0.0;
  std::size_t actuations = 0;
};

Outcome run_case(double cap_w, int mode /*0=none,1=reactive,2=plan-based*/) {
  sim::ClusterParams params;
  params.seed = 77;
  params.workload.seed = 77;
  // Below saturation: facility power ramps with the diurnal submission
  // cycle, so the cap binds during the daily peak — the regime where the
  // plan-based governor's forecast can act *before* the ramp arrives.
  params.workload.peak_arrival_rate_per_hour = 6.0;
  params.workload.max_duration = 3 * kHour;
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store(1 << 16);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);
  analytics::ControlLoop loop(cluster, store);
  if (mode > 0) {
    analytics::PowerCapGovernor::Params pp;
    pp.cap_w = cap_w;
    // A deliberately slow control period (production power managers often
    // act on multi-minute telemetry aggregates): the reactive governor then
    // trails fast load ramps, which is precisely the gap the plan-based
    // (forecast) variant closes by shedding ahead of the ramp.
    pp.period = 10 * kMinute;
    pp.forecast_lead = 20 * kMinute;
    pp.plan_based = mode == 2;
    loop.add(std::make_shared<analytics::PowerCapGovernor>(pp));
    // The energy-mode DVFS governor rides along: memory-bound phases give
    // back watts the cap governor does not have to take from performance.
    analytics::DvfsGovernor::Params gp;
    gp.mode = analytics::DvfsGovernor::Mode::kEnergy;
    loop.add(std::make_shared<analytics::DvfsGovernor>(gp));
  }

  Outcome o;
  while (cluster.now() < 2 * kDay) {
    cluster.step();
    collector.collect();
    loop.tick();
    const double p = cluster.facility().facility_power_w();
    if (p > cap_w) {
      o.over_cap_minutes += static_cast<double>(params.dt) / 60.0;
      o.worst_overshoot_w = std::max(o.worst_overshoot_w, p - cap_w);
    }
  }
  o.it_kwh = cluster.it_energy_j() / units::kJoulesPerKilowattHour;
  for (const auto& job : cluster.scheduler().completed()) {
    o.work_done_kh += static_cast<double>(job.spec.nominal_duration()) *
                      static_cast<double>(job.spec.nodes_requested) / 3600.0 /
                      1000.0;
  }
  o.actuations = loop.audit_log().size();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const double cap_fraction = argc > 1 ? std::atof(argv[1]) : 0.92;

  // Establish the unconstrained peak to place the cap meaningfully.
  std::printf("PowerStack-style multi-pillar power management\n");
  std::printf("phase 1: measuring unconstrained facility power...\n");
  const Outcome free_run = run_case(1e12, 0);

  sim::ClusterParams probe_params;
  probe_params.seed = 77;
  probe_params.workload.seed = 77;
  probe_params.workload.peak_arrival_rate_per_hour = 6.0;
  probe_params.workload.max_duration = 3 * kHour;
  sim::ClusterSimulation probe(probe_params);
  double peak = 0.0;
  while (probe.now() < 2 * kDay) {
    probe.step();
    peak = std::max(peak, probe.facility().facility_power_w());
  }
  const double cap_w = peak * cap_fraction;
  std::printf("unconstrained peak: %.1f kW -> cap at %.0f%% = %.1f kW\n\n",
              peak / 1000.0, cap_fraction * 100.0, cap_w / 1000.0);

  const Outcome uncapped = run_case(cap_w, 0);
  const Outcome reactive = run_case(cap_w, 1);
  const Outcome planned = run_case(cap_w, 2);

  TextTable table({"policy", "minutes over cap", "worst overshoot [kW]",
                   "IT energy [kWh]", "work done [knode-h]", "actuations"});
  for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, Align::kRight);
  const auto row = [&](const char* name, const Outcome& o) {
    table.add_row({name, format_double(o.over_cap_minutes, 1),
                   format_double(o.worst_overshoot_w / 1000.0, 2),
                   format_double(o.it_kwh, 1), format_double(o.work_done_kh, 2),
                   std::to_string(o.actuations)});
  };
  row("no governor", uncapped);
  row("reactive cap", reactive);
  row("plan-based cap (forecast)", planned);
  std::printf("%s", table.render().c_str());
  std::printf("\npillars crossed: building-infrastructure (the cap/meter) -> "
              "system-hardware (DVFS) -> system-software (the governor reads "
              "fleet state) -> applications (memory-bound phases downclocked "
              "first).\n");
  std::printf("\nreading the numbers: both governors hold the cap through the "
              "diurnal ramps; the residual over-cap minutes are instantaneous "
              "steps when a large job starts — foreseeable only with "
              "job-level power prediction (analytics/predictive/jobs), the "
              "next integration step a production PowerStack would take. "
              "E5 (bench_multitype) isolates the proactive-vs-reactive gap "
              "on a KPI where forecasts do bind.\n");
  (void)free_run;
  return 0;
}
