// The LLNL beyond-the-datacenter use case (paper Sec. V-C, [72]) as a live
// tool: learn the facility's power spectrum from history, then every hour
// forecast the next 4 hours and print utility notifications for predicted
// swings beyond the contractual threshold.
//
//   ./llnl_notify [days_history=7] [threshold_kw=1.0]
#include <cstdio>
#include <cstdlib>

#include "analytics/predictive/spectral.hpp"
#include "common/string_util.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

int main(int argc, char** argv) {
  using namespace oda;
  const Duration history_days = argc > 1 ? std::atoll(argv[1]) : 7;
  const double threshold_kw = argc > 2 ? std::atof(argv[2]) : 1.0;

  sim::ClusterParams params;
  params.seed = 55;
  params.dt = 60;
  params.workload.peak_arrival_rate_per_hour = 4.0;  // below saturation: diurnal cycle visible
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store(1 << 17);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_group({"power", "facility/total_power", kMinute});

  std::printf("building %lld days of power history...\n",
              static_cast<long long>(history_days));
  while (cluster.now() < history_days * kDay) {
    cluster.step();
    collector.collect();
  }

  // Contract scaled to this facility (see bench_llnl_power): interval-mean
  // power, 2 h ramp window.
  analytics::NotificationRule rule;
  rule.threshold_w = threshold_kw * 1000.0;
  rule.window = 2 * kHour;
  rule.sample_period = 15 * kMinute;

  std::printf("monitoring day %lld with hourly 4-hour-ahead forecasts "
              "(threshold %.1f kW over 2 h):\n\n",
              static_cast<long long>(history_days), threshold_kw);
  std::size_t notifications = 0;
  for (int hour = 0; hour < 24; ++hour) {
    // Refit on all history up to now and look ahead 4 hours.
    const auto history = store.query_aggregated(
        "facility/total_power", 0, cluster.now(), 15 * kMinute,
        telemetry::Aggregation::kMean);
    analytics::SpectralForecaster forecaster(8);
    forecaster.fit(history.values);
    const auto forecast = forecaster.forecast(16);  // 16 x 15 min = 4 h
    for (const auto& swing : analytics::detect_power_swings(forecast, rule)) {
      ++notifications;
      const TimePoint when =
          cluster.now() + static_cast<Duration>(swing.step) * 15 * kMinute;
      std::printf("[%s] NOTIFY UTILITY: expected %s of %.1f kW around %s\n",
                  format_time(cluster.now()).c_str(),
                  swing.delta_w > 0 ? "ramp-up" : "ramp-down",
                  std::abs(swing.delta_w) / 1000.0, format_time(when).c_str());
    }
    // Advance one hour of real operation.
    const TimePoint next = cluster.now() + kHour;
    while (cluster.now() < next) {
      cluster.step();
      collector.collect();
    }
  }

  // How did the day actually look?
  const auto actual = store.query_aggregated(
      "facility/total_power", history_days * kDay, cluster.now(),
      15 * kMinute, telemetry::Aggregation::kMean);
  const auto actual_swings = analytics::detect_power_swings(actual.values, rule);
  std::printf("\nsummary: %zu notifications sent, %zu actual threshold "
              "crossings during the day\n",
              notifications, actual_swings.size());
  return 0;
}
