// Telemetry exporter: run the simulated facility from a config file and
// dump selected sensors as CSV for external plotting/analysis — the
// "facility data processing" endpoint of the descriptive row ([8],[58]).
// With a fourth argument it also records the run with causal tracing on and
// writes the Chrome trace JSON there (validated by scripts/check_trace.py
// in CI), so the same binary exports both the data and the trace of
// producing it.
//
//   ./export_trace [config_file] [sensor_glob] [hours] [trace_json] > trace.csv
//
// Config files use "section.key = value" lines; see
// sim::cluster_params_to_config for every recognized key, e.g.:
//
//   cluster.racks = 2
//   workload.peak_arrival_rate_per_hour = 10
//   weather.mean_temp_c = 22
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/csv.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"
#include "sim/config.hpp"
#include "telemetry/collector.hpp"

int main(int argc, char** argv) {
  using namespace oda;

  sim::ClusterParams params;
  if (argc > 1 && std::string(argv[1]) != "-") {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open config file: %s\n", argv[1]);
      return 1;
    }
    std::stringstream text;
    text << in.rdbuf();
    try {
      params = sim::cluster_params_from_config(Config::from_text(text.str()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "config error: %s\n", e.what());
      return 1;
    }
  }
  const std::string pattern = argc > 2 ? argv[2] : "facility/*";
  const Duration hours = argc > 3 ? std::atoll(argv[3]) : 24;
  const char* trace_json = argc > 4 ? argv[4] : nullptr;

  obs::Tracer& tracer = obs::Tracer::global();
  if (trace_json != nullptr) {
    tracer.set_capacity(1 << 18);
    tracer.set_enabled(true);
  }

  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store(1 << 17);
  telemetry::Collector collector(cluster, &store, nullptr);
  const std::size_t matched = collector.add_group({"export", pattern, kMinute});
  if (matched == 0) {
    std::fprintf(stderr, "no sensors match pattern: %s\n", pattern.c_str());
    return 1;
  }
  std::fprintf(stderr, "exporting %zu sensors over %lld h...\n", matched,
               static_cast<long long>(hours));

  while (cluster.now() < hours * kHour) {
    cluster.step();
    collector.collect();
  }

  const auto paths = store.match(pattern);
  const auto frame = store.frame(paths, 0, cluster.now(), kMinute);
  CsvWriter csv(std::cout);
  std::vector<std::string> header{"time_s"};
  header.insert(header.end(), frame.columns.begin(), frame.columns.end());
  csv.write_row(header);
  for (std::size_t r = 0; r < frame.rows(); ++r) {
    // Skip buckets before the first collection (all-NaN rows).
    bool any = false;
    for (std::size_t c = 0; c < frame.cols(); ++c) {
      any |= !std::isnan(frame.at(r, c));
    }
    if (!any) continue;
    std::vector<double> row{static_cast<double>(frame.times[r])};
    for (std::size_t c = 0; c < frame.cols(); ++c) {
      row.push_back(frame.at(r, c));
    }
    csv.write_row(row);
  }
  std::fprintf(stderr, "wrote %zu rows x %zu columns\n", frame.rows(),
               frame.cols() + 1);

  if (trace_json != nullptr) {
    tracer.set_enabled(false);
    std::ofstream out(trace_json);
    if (!out) {
      std::fprintf(stderr, "cannot open trace output: %s\n", trace_json);
      return 1;
    }
    out << tracer.to_chrome_json();
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 tracer.event_count(), trace_json);
  }
  return 0;
}
