// WAL crash-recovery harness: a deterministic ingest stream whose every
// prefix is reproducible from the seed, so a recovered WAL can be checked
// for *exact* sample conservation after a SIGKILL at any instant
// (scripts/crash_restart.py drives this binary).
//
//   wal_ingest ingest  <dir> [--seed S] [--paths P] [--batches N]
//                            [--batch-size B] [--batch-sleep-us U]
//                            [--flush-every F] [--progress FILE]
//   wal_ingest verify  <dir> [--seed S] [--paths P] [--batch-size B]
//                            [--progress FILE]
//   wal_ingest inspect <dir>
//
// ingest: recovers the existing WAL (verifying the recovered readings are
// an exact prefix of the deterministic stream), then resumes the stream
// from that position, appending batch after batch through the store's
// write-ahead path. After every F batches it flushes the WAL and appends an
// ack line "flushed <total-samples>" to the progress file — each ack is a
// durability promise the verifier holds recovery to. Exits 0 after N
// batches (orderly stop: flush + fsync, no tail to truncate).
//
// verify: recovers into a fresh store and asserts (a) the recovered
// readings are bit-identical to the first K samples of the stream, (b) K
// covers the last acked flush, and (c) a reference store fed that same
// prefix matches the replayed store sample for sample (times and raw value
// bits). Prints "verified K samples" and exits nonzero on any mismatch.
//
// inspect: prints recovery stats; exits 1 iff the tail was truncated (used
// to regression-test that an orderly stop leaves a clean tail).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "telemetry/store.hpp"
#include "telemetry/wal.hpp"

namespace {

using oda::telemetry::IdReading;
using oda::telemetry::SeriesId;
using oda::telemetry::SeriesInterner;
using oda::telemetry::TimeSeriesStore;
using oda::telemetry::Wal;
using oda::telemetry::WalOptions;
using oda::telemetry::WalRecoveryStats;

struct Args {
  std::string mode;
  std::string dir;
  std::uint64_t seed = 7;
  std::size_t paths = 16;
  std::size_t batches = 1000000;
  std::size_t batch_size = 64;
  std::size_t flush_every = 4;
  long batch_sleep_us = 200;
  std::string progress;
};

/// Sample `g` (global index) of the stream: path index, monotone per-series
/// timestamps, and a value that is NaN every 97th sample (bit-exactness
/// must survive NaN payloads) and otherwise derived from splitmix64 so
/// every bit pattern is seed-reproducible.
IdReading stream_sample(const Args& a,
                        const std::vector<SeriesId>& ids, std::uint64_t g) {
  const std::size_t path_ix = static_cast<std::size_t>(g % a.paths);
  const auto time = static_cast<oda::TimePoint>(g / a.paths);
  std::uint64_t state = a.seed ^ (g * 0x9E3779B97F4A7C15ULL);
  const std::uint64_t bits = oda::splitmix64(state);
  const double value = (g % 97 == 0)
                           ? std::nan("")
                           : static_cast<double>(bits >> 11) * 0x1.0p-53;
  return IdReading{ids[path_ix], {time, value}};
}

std::vector<SeriesId> stream_ids(const Args& a) {
  std::vector<SeriesId> ids;
  ids.reserve(a.paths);
  for (std::size_t i = 0; i < a.paths; ++i) {
    ids.push_back(SeriesInterner::global().intern(
        "walho/" + std::to_string(a.seed) + "/s" + std::to_string(i)));
  }
  return ids;
}

bool bits_equal(double a, double b) {
  std::uint64_t ab = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ab, &a, 8);
  std::memcpy(&bb, &b, 8);
  return ab == bb;
}

/// Asserts `recovered` is exactly the first recovered.size() samples of the
/// deterministic stream. Returns false (with a diagnostic) on any deviation.
bool check_prefix(const Args& a, const std::vector<SeriesId>& ids,
                  const std::vector<IdReading>& recovered) {
  for (std::uint64_t g = 0; g < recovered.size(); ++g) {
    const IdReading expect = stream_sample(a, ids, g);
    const IdReading& got = recovered[g];
    if (got.id.value != expect.id.value ||
        got.sample.time != expect.sample.time ||
        !bits_equal(got.sample.value, expect.sample.value)) {
      std::fprintf(stderr,
                   "prefix mismatch at sample %llu: got (id=%u t=%lld) "
                   "expected (id=%u t=%lld)\n",
                   static_cast<unsigned long long>(g), got.id.value,
                   static_cast<long long>(got.sample.time), expect.id.value,
                   static_cast<long long>(expect.sample.time));
      return false;
    }
  }
  return true;
}

/// Last "flushed N" ack in the progress file, or 0 when absent.
std::uint64_t last_ack(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  std::uint64_t ack = 0;
  char line[128];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long n = 0;
    if (std::sscanf(line, "flushed %llu", &n) == 1) ack = n;
  }
  std::fclose(f);
  return ack;
}

int run_ingest(const Args& a) {
  const std::vector<SeriesId> ids = stream_ids(a);
  TimeSeriesStore store(1 << 12);
  Wal wal(WalOptions{.dir = a.dir});
  std::vector<IdReading> recovered;
  const WalRecoveryStats stats = wal.recover(recovered);
  if (!check_prefix(a, ids, recovered)) return 2;
  store.insert_batch(std::span<const IdReading>(recovered));
  store.set_wal(&wal);
  if (!wal.start()) {
    std::fprintf(stderr, "wal disabled or directory unusable\n");
    return 3;
  }
  std::printf("resuming stream at sample %zu (%llu truncated bytes)\n",
              recovered.size(),
              static_cast<unsigned long long>(stats.truncated_bytes));
  std::fflush(stdout);

  std::FILE* progress = nullptr;
  if (!a.progress.empty()) {
    progress = std::fopen(a.progress.c_str(), "a");
    if (progress == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", a.progress.c_str());
      return 3;
    }
  }
  std::uint64_t g = recovered.size();
  std::vector<IdReading> batch(a.batch_size);
  for (std::size_t b = 0; b < a.batches; ++b) {
    for (std::size_t j = 0; j < a.batch_size; ++j) {
      batch[j] = stream_sample(a, ids, g++);
    }
    store.insert_batch(std::span<const IdReading>(batch));
    if ((b + 1) % a.flush_every == 0) {
      if (!wal.flush()) {
        std::fprintf(stderr, "wal degraded mid-run\n");
        return 4;
      }
      if (progress != nullptr) {
        // The ack is written only AFTER flush() returned: every acked
        // sample is durably on disk, so a later recovery must cover it.
        std::fprintf(progress, "flushed %llu\n",
                     static_cast<unsigned long long>(g));
        std::fflush(progress);
      }
    }
    if (a.batch_sleep_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(a.batch_sleep_us));
    }
  }
  store.set_wal(nullptr);
  const bool flushed = wal.flush();
  wal.stop();
  if (progress != nullptr) std::fclose(progress);
  std::printf("ingest done: %llu samples total, flushed=%d\n",
              static_cast<unsigned long long>(g), flushed ? 1 : 0);
  return flushed ? 0 : 4;
}

int run_verify(const Args& a) {
  const std::vector<SeriesId> ids = stream_ids(a);
  Wal wal(WalOptions{.dir = a.dir});
  std::vector<IdReading> recovered;
  const WalRecoveryStats stats = wal.recover(recovered);
  if (!check_prefix(a, ids, recovered)) return 2;

  const std::uint64_t acked = a.progress.empty() ? 0 : last_ack(a.progress);
  if (recovered.size() < acked) {
    std::fprintf(stderr,
                 "durability violation: recovered %zu < acked %llu\n",
                 recovered.size(), static_cast<unsigned long long>(acked));
    return 2;
  }

  // Replay into one store; feed the same prefix to an independently-built
  // reference store through the plain ingest path; require bit equality on
  // every series (the test_store_equiv equivalence surface).
  TimeSeriesStore replayed(1 << 12);
  replayed.insert_batch(std::span<const IdReading>(recovered));
  TimeSeriesStore reference(1 << 12);
  for (const IdReading& r : recovered) reference.insert(r.id, r.sample);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::string& path = SeriesInterner::global().path(ids[i]);
    const auto got = replayed.query_all(path);
    const auto want = reference.query_all(path);
    if (got.times != want.times || got.size() != want.size()) {
      std::fprintf(stderr, "replay mismatch on %s\n", path.c_str());
      return 2;
    }
    for (std::size_t k = 0; k < got.size(); ++k) {
      if (!bits_equal(got.values[k], want.values[k])) {
        std::fprintf(stderr, "replay value mismatch on %s[%zu]\n",
                     path.c_str(), k);
        return 2;
      }
    }
  }
  std::printf("verified %zu samples (acked %llu, truncated %llu bytes%s)\n",
              recovered.size(), static_cast<unsigned long long>(acked),
              static_cast<unsigned long long>(stats.truncated_bytes),
              stats.tail_truncated ? ", tail truncated" : "");
  return 0;
}

int run_inspect(const Args& a) {
  Wal wal(WalOptions{.dir = a.dir});
  std::vector<IdReading> recovered;
  const WalRecoveryStats stats = wal.recover(recovered);
  std::printf("segments=%llu records=%llu samples=%llu truncated_bytes=%llu "
              "truncated_segments=%llu tail_truncated=%d reason=%s\n",
              static_cast<unsigned long long>(stats.segments_scanned),
              static_cast<unsigned long long>(stats.records_replayed),
              static_cast<unsigned long long>(stats.samples_replayed),
              static_cast<unsigned long long>(stats.truncated_bytes),
              static_cast<unsigned long long>(stats.truncated_segments),
              stats.tail_truncated ? 1 : 0, stats.truncate_reason.c_str());
  return stats.tail_truncated ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: wal_ingest <ingest|verify|inspect> <dir> "
                         "[--seed S] [--paths P] [--batches N] "
                         "[--batch-size B] [--batch-sleep-us U] "
                         "[--flush-every F] [--progress FILE]\n");
    return 64;
  }
  Args a;
  a.mode = argv[1];
  a.dir = argv[2];
  for (int i = 3; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* val = argv[i + 1];
    if (flag == "--seed") {
      a.seed = std::strtoull(val, nullptr, 10);
    } else if (flag == "--paths") {
      a.paths = std::strtoull(val, nullptr, 10);
    } else if (flag == "--batches") {
      a.batches = std::strtoull(val, nullptr, 10);
    } else if (flag == "--batch-size") {
      a.batch_size = std::strtoull(val, nullptr, 10);
    } else if (flag == "--batch-sleep-us") {
      a.batch_sleep_us = std::strtol(val, nullptr, 10);
    } else if (flag == "--flush-every") {
      a.flush_every = std::strtoull(val, nullptr, 10);
    } else if (flag == "--progress") {
      a.progress = val;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 64;
    }
  }
  if (a.paths == 0 || a.batch_size == 0 || a.flush_every == 0) {
    std::fprintf(stderr, "paths/batch-size/flush-every must be positive\n");
    return 64;
  }
  if (!oda::telemetry::wal_enabled()) {
    std::printf("wal disabled (ODA_WAL=OFF): nothing to do\n");
    return 0;
  }
  if (a.mode == "ingest") return run_ingest(a);
  if (a.mode == "verify") return run_verify(a);
  if (a.mode == "inspect") return run_inspect(a);
  std::fprintf(stderr, "unknown mode %s\n", a.mode.c_str());
  return 64;
}
