// Self-monitoring: the ODA stack observing itself. Runs the full pipeline
// (sim -> collector -> bus/store -> analytics -> control) with span tracing
// enabled, exercises one capability per framework grid cell, and then
// reports the stack's own operational metrics:
//   * PIPELINE HEALTH checks (drops, slow subscribers, rejected tasks),
//   * the full metrics table,
//   * the 4x4 "cost per grid cell" view (runs @ mean ms),
// and exports the evidence in machine-readable form:
//   * Prometheus text exposition  (validated by scripts/check_prom.py),
//   * a JSON metrics snapshot,
//   * a Chrome trace_event JSON loadable in chrome://tracing / Perfetto,
//   * folded stacks from the sampling profiler (flamegraph.pl input,
//     validated by scripts/check_folded.py),
//   * the critical-path report over the traced window (the same text
//     scripts/analyze_trace.py derives from trace_out — the lockstep
//     fixture compares the two byte-for-byte).
//
//   ./self_monitor [hours=8] [prom_out] [trace_out] [metrics_json_out]
//                  [flight_out] [profile_out] [cp_out] [wal_dir] [http_port]
//
// With a wal_dir ("-" or empty disables), ingest is write-ahead logged: a
// prior run's segments are replayed into the store before collection starts
// and every batch is group-committed to disk (telemetry/wal.hpp). SIGTERM
// requests a graceful shutdown: the HTTP plane quiesces first (stop
// accepting, drain in-flight responses), then the run loop's WAL is flushed
// and fsynced (an orderly stop leaves no tail for recovery to truncate),
// final metrics are exported, and the process exits 0.
//
// With an http_port ("-" or absent disables; "0" = ephemeral), the live
// introspection plane comes up: an ObsServer answers /metrics, /healthz,
// /trace, /profile, /flight, /varz and /selfscrape while the pipeline runs,
// and a SelfScrape pass per simulated step feeds the process's own oda_*
// series back into the same store — queryable live at /selfscrape. The
// bound port is announced on stdout ("obs server listening on ...") so
// harnesses (scripts/scrape_smoke.py) can attach to an ephemeral port.
//
// The always-on flight recorder is exported too: its ring dump (last spans
// on every thread, causal ids included) goes to flight_out, and the same
// path is installed as the automatic postmortem destination used by
// assess_pipeline_health on a healthy -> unhealthy edge.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "analytics/descriptive/kpi.hpp"
#include "analytics/diagnostic/anomaly.hpp"
#include "analytics/diagnostic/software.hpp"
#include "analytics/predictive/failure.hpp"
#include "analytics/predictive/jobs.hpp"
#include "analytics/predictive/spectral.hpp"
#include "analytics/predictive/workload_forecast.hpp"
#include "analytics/prescriptive/controller.hpp"
#include "analytics/prescriptive/cooling.hpp"
#include "analytics/prescriptive/dvfs.hpp"
#include "analytics/prescriptive/placement.hpp"
#include "analytics/prescriptive/recommend.hpp"
#include "obs/critical_path.hpp"
#include "obs/exposition.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "net/obs_server.hpp"
#include "net/self_scrape.hpp"
#include "sim/cluster.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/store.hpp"
#include "telemetry/wal.hpp"

namespace {

/// SIGTERM latch: the handler only stores a lock-free atomic flag (async-
/// signal-safe); the run loop polls it once per simulated step.
std::atomic<bool> g_sigterm{false};

void handle_sigterm(int) {
  // relaxed: the loop re-reads the flag every iteration; no other memory
  // is published through it.
  g_sigterm.store(true, std::memory_order_relaxed);
}

bool write_file(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oda;
  const Duration hours = argc > 1 ? std::atoll(argv[1]) : 8;
  const char* prom_out = argc > 2 ? argv[2] : "self_monitor.prom";
  const char* trace_out = argc > 3 ? argv[3] : "self_monitor_trace.json";
  const char* json_out = argc > 4 ? argv[4] : "self_monitor_metrics.json";
  const char* flight_out = argc > 5 ? argv[5] : "self_monitor_flight.json";
  const char* profile_out = argc > 6 ? argv[6] : "self_monitor.folded";
  const char* cp_out = argc > 7 ? argv[7] : "self_monitor_critical_path.txt";
  const std::string wal_dir = argc > 8 ? argv[8] : "";
  const std::string http_port = argc > 9 ? argv[9] : "-";

  std::signal(SIGTERM, handle_sigterm);

  // Spans from every layer (sim, collector, bus, analytics) are recorded —
  // but only over the final simulated hour, so the bounded trace buffer
  // holds the whole window and drops nothing.
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_capacity(1 << 18);
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.set_dump_path(flight_out);

  // The stack profiles itself too: sample every watched thread (the pool
  // workers plus this main thread) for the whole run. In ODA_PROFILE=OFF
  // builds start() reports false and dump_folded() writes an empty file.
  WatchedThreadScope main_scope("main");
  obs::SamplingProfiler& profiler = obs::SamplingProfiler::global();
  const bool profiling = profiler.start();

  // 1. Simulated facility + full monitoring plane: collector -> store+bus,
  //    with a thread pool for parallel sensor reads.
  sim::ClusterParams params;
  params.seed = 42;
  params.workload.peak_arrival_rate_per_hour = 40.0;
  sim::ClusterSimulation cluster(params);
  cluster.scheduler().set_placement(analytics::make_thermal_placement(cluster));

  telemetry::TimeSeriesStore store(1 << 15);

  // Durable tier: replay any previous run's segments BEFORE attaching the
  // WAL (an attached store would re-log its own replay), then log every
  // batch from here on. Inert when no dir is given or ODA_WAL=OFF.
  std::optional<telemetry::Wal> wal;
  if (!wal_dir.empty() && wal_dir != "-" && telemetry::wal_enabled()) {
    wal.emplace(telemetry::WalOptions{.dir = wal_dir});
    const auto recovered = wal->recover_into(store);
    store.set_wal(&*wal);
    wal->start();
    std::printf("wal: replayed %llu samples from %llu segment(s)%s\n",
                static_cast<unsigned long long>(recovered.samples_replayed),
                static_cast<unsigned long long>(recovered.segments_scanned),
                recovered.tail_truncated ? " (tail truncated)" : "");
  }

  // Live introspection plane: HTTP endpoints over the running process plus
  // the reflexive scrape loop feeding oda_* metrics back into `store`.
  // Inert when no port is given or ODA_NET=OFF (start() reports false).
  net::SelfScrape selfscrape(store);
  std::optional<net::ObsServer> obs_server;
  if (http_port != "-" && net::net_enabled()) {
    net::ObsServerOptions obs_opts;
    obs_opts.http.port =
        static_cast<std::uint16_t>(std::atoi(http_port.c_str()));
    obs_server.emplace(obs_opts);
    obs_server->set_store(&store);
    if (obs_server->start()) {
      std::printf("obs server listening on 127.0.0.1:%u\n",
                  static_cast<unsigned>(obs_server->port()));
      std::fflush(stdout);
    } else {
      std::fprintf(stderr, "obs server failed to start on port %s\n",
                   http_port.c_str());
      obs_server.reset();
    }
  }

  telemetry::MessageBus bus;
  ThreadPool pool(2);
  telemetry::Collector collector(cluster, &store, &bus, &pool);
  collector.add_group({"facility", "facility/*", 60});
  collector.add_group({"cluster", "cluster/*", 60});
  collector.add_group({"weather", "weather/*", 300});
  collector.add_group({"nodes", "rack*/node*/*", 60});

  // A downstream consumer on the bus (the alerting role): count facility
  // readings so the bus delivers real traffic worth timing.
  std::uint64_t facility_readings = 0;
  bus.subscribe("facility/*", [&facility_readings](const telemetry::Reading&) {
    ++facility_readings;
  });

  // Pull-model instrumentation of the shared primitives.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const auto pool_handles = obs::register_thread_pool(registry, pool, "collector");
  const auto tracer_handles = obs::register_tracer(registry, tracer, "global");
  const auto recorder_handles =
      obs::register_flight_recorder(registry, recorder, "global");
  const auto lock_handles = obs::register_lock_contention(registry);
  const auto profiler_handles =
      obs::register_profiler(registry, profiler, "global");

  // 2. Prescriptive control plane (building-infrastructure + hardware cells).
  analytics::ControlLoop control(cluster, store);
  control.add(std::make_shared<analytics::CoolingSetpointOptimizer>());
  control.add(std::make_shared<analytics::DvfsGovernor>());

  // 3. Run the pipeline; arm the tracer for the final hour.
  const TimePoint end = hours * kHour;
  const TimePoint trace_from = end > kHour ? end - kHour : 0;
  while (cluster.now() < end &&
         !g_sigterm.load(std::memory_order_relaxed)) {
    if (!tracer.enabled() && cluster.now() >= trace_from) {
      tracer.set_enabled(true);
    }
    cluster.step();
    collector.collect();
    control.tick();
    if (obs_server.has_value()) selfscrape.scrape_once(cluster.now());
  }
  const bool interrupted = g_sigterm.load(std::memory_order_relaxed);

  // Quiesce the HTTP plane FIRST: stop accepting, drain in-flight
  // responses, join the reactor. Ordering matters on SIGTERM — a scraper
  // mid-request during shutdown still gets a complete response (the drain
  // phase services parsed requests), and nothing touches the store while
  // the WAL below detaches and flushes.
  if (obs_server.has_value()) {
    obs_server->stop();
    std::printf("obs server quiesced; self-scrape: %llu passes, %llu samples "
                "ingested\n",
                static_cast<unsigned long long>(selfscrape.passes()),
                static_cast<unsigned long long>(selfscrape.samples_ingested()));
  }

  // Graceful shutdown of the durable tier: detach from the store first so
  // nothing logs after the flush, then flush+fsync and join the writer. An
  // orderly stop leaves segments ending on a record boundary — the next
  // recovery replays them with nothing to truncate.
  if (wal.has_value()) {
    store.set_wal(nullptr);
    const bool flushed = wal->flush();
    wal->stop();
    std::printf("wal: %s, %llu samples committed, %llu lost%s\n",
                flushed ? "flushed and fsynced" : "flush failed (degraded)",
                static_cast<unsigned long long>(wal->committed_samples()),
                static_cast<unsigned long long>(wal->lost_samples()),
                wal->degraded() ? " [degraded]" : "");
  }
  if (interrupted) {
    std::printf("SIGTERM received: graceful shutdown after %lld simulated "
                "seconds\n",
                static_cast<long long>(cluster.now()));
  }
  std::printf("ran %lld simulated hours: %llu samples, %llu bus deliveries, "
              "%llu facility readings consumed\n",
              static_cast<long long>(hours),
              static_cast<unsigned long long>(collector.samples_collected()),
              static_cast<unsigned long long>(bus.delivered_count()),
              static_cast<unsigned long long>(facility_readings));

  // 4. Exercise one capability per framework grid cell so the cost view has
  //    live numbers everywhere. Skipped on SIGTERM: a shutdown request
  //    wants the final metrics out, not a fresh analytics pass over a
  //    partially-collected window.
  if (!interrupted) {
  const auto& records = cluster.scheduler().completed();
  std::vector<std::string> prefixes;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    prefixes.push_back(cluster.node(i).path());
  }

  // Descriptive row.
  const auto pue = analytics::compute_pue(store, 0, cluster.now());
  analytics::compute_itue(store, 0, cluster.now());
  analytics::compute_slowdown({records.data(), records.size()});
  analytics::roofline(3000.0, 200.0, 450.0, 0.25);
  std::printf("interval PUE: %.3f over %lld h\n", pue.pue,
              static_cast<long long>(hours));

  // Diagnostic row.
  if (hours >= 6) {
    Rng rng(7);
    analytics::NodeAnomalyMonitor monitor({}, prefixes);
    monitor.train(store, kHour, end / 2, rng);
    std::size_t anomalous = 0;
    for (const auto& verdict : monitor.scan(store, cluster.now())) {
      if (verdict.anomalous) ++anomalous;
    }
    std::printf("node anomaly scan: %zu/%zu flagged\n", anomalous,
                cluster.node_count());
  }
  const auto fwq =
      analytics::synthesize_fwq(2048, 1e-3, 0.1, 2e-4, 1e-3, /*seed=*/9);
  analytics::analyze_fwq({fwq.data(), fwq.size()}, 1e-3, 1e-3);
  if (!cluster.scheduler().running().empty()) {
    analytics::classify_boundedness(store, cluster.scheduler().running().front(),
                                    prefixes, cluster.now());
  }

  // Predictive row.
  const auto power =
      store.query_aggregated("facility/total_power", 0, cluster.now(), kMinute,
                             telemetry::Aggregation::kMean);
  analytics::detect_power_swings({power.values.data(), power.values.size()},
                                 analytics::NotificationRule{});
  std::vector<double> wear(64);
  for (std::size_t i = 0; i < wear.size(); ++i) {
    wear[i] = 0.5 + 0.004 * static_cast<double>(i);
  }
  analytics::project_failure({wear.data(), wear.size()}, 3600.0, 0.9, true);
  analytics::WorkloadForecaster wf;
  for (const auto& r : records) wf.observe_arrival(r.spec.submit_time);
  if (!records.empty()) wf.forecast(24);
  analytics::JobRuntimePredictor runtime_predictor;
  for (const auto& r : records) runtime_predictor.observe(r);
  if (!records.empty()) runtime_predictor.predict(records.back().spec);

  // Prescriptive row: the control loop already ran setpoint + DVFS and the
  // scheduler used thermal-aware placement; add the applications cell.
  if (!records.empty()) {
    analytics::recommend_for_job(store, records.back(), prefixes);
  }
  }  // if (!interrupted)

  // 5. The stack's own operational picture. Stop sampling first so the
  //    profiler counters the snapshot exports are final.
  if (profiling) profiler.stop();
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const obs::PipelineHealthReport health = obs::assess_pipeline_health(snapshot);
  std::printf("\n%s\n", health.render().c_str());
  std::printf("%s\n", obs::render_cell_costs(snapshot).c_str());
  std::printf("%s\n", obs::render_metrics_table(snapshot).c_str());

  // 6. Machine-readable exports.
  bool ok = true;
  ok = write_file(prom_out, obs::to_prometheus(snapshot)) && ok;
  ok = write_file(json_out, obs::to_json(snapshot)) && ok;
  ok = write_file(trace_out, tracer.to_chrome_json()) && ok;
  ok = write_file(flight_out, recorder.to_chrome_json()) && ok;
  ok = profiler.dump_folded(profile_out) && ok;
  const auto cp_reports = obs::analyze_critical_path(tracer.events());
  ok = write_file(cp_out, obs::render_critical_path(cp_reports)) && ok;
  std::printf("exports: %s, %s, %s, %s, %s, %s\n", prom_out, json_out,
              trace_out, flight_out, profile_out, cp_out);
  std::printf("profiler: %llu samples on %zu thread(s), critical-path "
              "reports: %zu\n",
              static_cast<unsigned long long>(profiler.sampled_total()),
              profiler.thread_count(), cp_reports.size());
  std::printf("trace: %zu spans retained, %llu dropped, %zu metric families\n",
              tracer.event_count(),
              static_cast<unsigned long long>(tracer.dropped()),
              registry.family_count());
  std::printf("flight recorder: %zu events retained of %llu recorded\n",
              recorder.event_count(),
              static_cast<unsigned long long>(recorder.recorded_total()));

  if (!ok || !health.healthy()) {
    std::printf("self-monitoring verdict: UNHEALTHY\n");
    return 1;
  }
  std::printf("self-monitoring verdict: healthy\n");
  return 0;
}
