// Quickstart: stand up the simulated data center, wire the monitoring
// pipeline, run one simulated day, and exercise one capability from every
// row of the ODA framework grid — descriptive KPIs, a diagnostic scan,
// a predictive backtest, and a prescriptive control loop.
//
//   ./quickstart [hours=24]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analytics/descriptive/dashboard.hpp"
#include "analytics/descriptive/kpi.hpp"
#include "analytics/diagnostic/anomaly.hpp"
#include "analytics/predictive/backtest.hpp"
#include "analytics/prescriptive/controller.hpp"
#include "analytics/prescriptive/cooling.hpp"
#include "core/bindings.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/store.hpp"

int main(int argc, char** argv) {
  using namespace oda;
  const Duration hours = argc > 1 ? std::atoll(argv[1]) : 24;

  // 1. The simulated facility: 4 racks x 16 nodes, diurnal workload.
  sim::ClusterParams params;
  params.seed = 42;
  params.workload.peak_arrival_rate_per_hour = 40.0;
  sim::ClusterSimulation cluster(params);

  // 2. Monitoring plane: collector -> time-series store.
  telemetry::TimeSeriesStore store(1 << 15);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(/*period=*/60);
  std::printf("sensors discovered: %zu\n", collector.catalog().size());

  // 3. Prescriptive control plane: cooling set-point optimizer + mode
  //    switcher run against live telemetry.
  analytics::ControlLoop control(cluster, store);
  control.add(std::make_shared<analytics::CoolingSetpointOptimizer>());
  control.add(std::make_shared<analytics::CoolingModeSwitcher>());

  // 4. Run one simulated day.
  const TimePoint end = hours * kHour;
  while (cluster.now() < end) {
    cluster.step();
    collector.collect();
    control.tick();
  }

  // 5. Descriptive: facility dashboard + KPIs.
  std::printf("%s\n",
              analytics::facility_dashboard(store, 0, cluster.now()).c_str());
  const auto pue = analytics::compute_pue(store, 0, cluster.now());
  std::printf("interval PUE: %.3f  (facility %.1f kWh / IT %.1f kWh)\n\n",
              pue.pue, pue.facility_energy_kwh, pue.it_energy_kwh);

  // 6. Diagnostic: train the node anomaly monitor on the first half of the
  //    run and scan the current state (needs a few hours of history).
  if (hours >= 6) {
    std::vector<std::string> prefixes;
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      prefixes.push_back(cluster.node(i).path());
    }
    Rng rng(7);
    analytics::NodeAnomalyMonitor monitor({}, prefixes);
    monitor.train(store, kHour, end / 2, rng);
    std::size_t anomalous = 0;
    for (const auto& verdict : monitor.scan(store, cluster.now())) {
      if (verdict.anomalous) ++anomalous;
    }
    std::printf("diagnostic scan: %zu/%zu nodes flagged anomalous (healthy run)\n\n",
                anomalous, cluster.node_count());
  } else {
    std::printf("diagnostic scan skipped: run at least 6 hours to train the "
                "anomaly monitor\n\n");
  }

  // 7. Predictive: backtest forecasters on the facility power series.
  const auto power =
      store.query_aggregated("facility/total_power", 0, cluster.now(),
                             15 * kMinute, telemetry::Aggregation::kMean);
  if (power.values.size() >= 90) {
    analytics::BacktestParams bp;
    bp.min_train = power.values.size() / 2;
    std::printf("forecaster backtest on facility power (MAE in W):\n");
    for (const auto& r : analytics::backtest_all(
             {"persistence", "ses", "holt", "ar"}, power.values, bp)) {
      std::printf("  %-14s mae=%.0f  skill-vs-persistence=%+.2f\n",
                  r.model.c_str(), r.mae, r.skill_vs_persistence);
    }
  }

  // 8. The framework itself: confirm the library covers all 16 cells.
  const auto grid = core::implemented_capabilities();
  const auto coverage = core::verify_full_coverage(grid);
  std::printf("\nframework coverage: %zu capabilities across %zu/16 cells\n",
              coverage.total_capabilities, coverage.occupied_cells);
  std::printf("prescriptive actuations performed: %zu\n",
              control.audit_log().size());
  std::printf("completed jobs: %zu\n", cluster.scheduler().completed().size());
  return 0;
}
