// The ENI-style composition from the paper's Figure 3 / Sec. V-A (Bortot et
// al. [39]): a *diagnostic* component that detects infrastructure anomalies
// (aided by a periodic stress test) feeding a *prescriptive* component that
// responds with cooling-system actions — two cells of the grid, one pillar,
// two disciplines.
//
//   ./eni_cooling
#include <cstdio>
#include <memory>
#include <set>

#include "analytics/diagnostic/anomaly.hpp"
#include "analytics/prescriptive/controller.hpp"
#include "analytics/prescriptive/response.hpp"
#include "common/string_util.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

int main() {
  using namespace oda;

  sim::ClusterParams params;
  params.seed = 99;
  params.weather.mean_temp_c = 26.0;  // chiller territory
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store(1 << 16);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);

  // Diagnostic half: EWMA control charts on the cooling plant's sensors.
  struct PlantDetector {
    std::string sensor;
    std::string condition;  // what an alarm on this sensor means
    analytics::EwmaDetector detector{0.05, 5.0};
  };
  std::vector<PlantDetector> detectors;
  detectors.push_back({"facility/pump_power", "pump-degradation",
                       analytics::EwmaDetector(0.05, 5.0)});
  detectors.push_back({"facility/chiller_power", "thermal-runaway",
                       analytics::EwmaDetector(0.05, 5.0)});

  // Prescriptive half: the automatic response policy.
  auto policy = analytics::ResponsePolicy::standard(
      analytics::ResponseMode::kAutomatic);
  std::vector<analytics::Actuation> actuations;

  // Ground truth: a pump degradation begins on day 2.
  const TimePoint fault_start = 2 * kDay;
  const TimePoint fault_end = fault_start + 12 * kHour;
  cluster.faults().schedule({sim::FaultKind::kPumpDegradation, "facility",
                             fault_start, fault_end, 1.7});

  std::printf("ENI-style diagnostic->prescriptive cooling pipeline\n");
  std::printf("fault injected: pump degradation %s .. %s\n\n",
              format_time(fault_start).c_str(), format_time(fault_end).c_str());

  std::set<std::string> already_responded;
  TimePoint first_detection = -1;
  while (cluster.now() < 3 * kDay) {
    cluster.step();
    collector.collect();

    if (cluster.now() % (5 * kMinute) == 0) {
      for (auto& d : detectors) {
        const auto latest = store.latest(d.sensor);
        if (!latest) continue;
        d.detector.observe(latest->value);
        if (cluster.now() > 6 * kHour && d.detector.score() >= 1.0 &&
            !already_responded.count(d.condition)) {
          already_responded.insert(d.condition);
          if (first_detection < 0) first_detection = cluster.now();
          std::printf("[%s] DIAGNOSIS: %s on %s (score %.1f)\n",
                      format_time(cluster.now()).c_str(), d.condition.c_str(),
                      d.sensor.c_str(), d.detector.score());
          const auto action = policy.respond(
              {d.condition, d.sensor, d.detector.score()}, cluster, actuations);
          std::printf("[%s] RESPONSE : %s\n",
                      format_time(cluster.now()).c_str(), action.action.c_str());
        }
      }
    }
  }

  std::printf("\naudit log (%zu actuations):\n", actuations.size());
  for (const auto& a : actuations) {
    std::printf("  [%s] %s: %s %.2f -> %.2f (%s)\n",
                format_time(a.time).c_str(), a.controller.c_str(),
                a.knob.c_str(), a.old_value, a.new_value, a.reason.c_str());
  }
  if (first_detection >= 0) {
    std::printf("\ndetection latency after fault onset: %s\n",
                format_duration(first_detection - fault_start).c_str());
  } else {
    std::printf("\nno detection fired (unexpected for this scenario)\n");
  }
  return 0;
}
